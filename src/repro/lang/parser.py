"""MiniC recursive-descent parser.

Grammar (informally)::

    unit      := (structdecl | global | funcdef)*
    structdecl:= 'struct' ident '{' (type ident ';')* '}' ';'
    type      := ('int' | 'float' | 'void' | 'struct' ident) '*'*
    global    := type ident ('[' int ']')? ('=' init)? ';'
    funcdef   := type ident '(' params? ')' block
    block     := '{' stmt* '}'
    stmt      := decl | assign ';' | exprstmt ';' | if | while | for
               | switch | 'break' ';' | 'continue' ';' | 'return' expr? ';'
               | 'delete' expr ';' | block
    assign    := lvalue '=' expr
    expr      := ternary with C precedence; unary - ! ~ * & ; calls;
                 indexing; member access '.' / '->'; 'new' ident;
                 'sizeof' '(' type | ident ')'

Struct types always use the ``struct`` keyword (C style, no typedefs),
which keeps declarations unambiguous.  Type names are plain strings:
``"int"``, ``"float"``, a struct name like ``"Node"``, and pointers
append ``"*"`` (``"Node*"``).  Assignment is a statement (not an
expression), which keeps data flow in generated code easy to follow in
slices.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.lexer import Token, tokenize

_TYPE_NAMES = ("int", "float", "void")

# Binary operator precedence: higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            wanted = text or kind
            raise CompileError(
                "expected %r, found %r" % (wanted, token.text or token.kind),
                token.line, token.col)
        return self.advance()

    # -- types ---------------------------------------------------------------

    def _parse_type(self) -> Tuple[str, Token]:
        """A type: ``int`` / ``float`` / ``void`` / ``struct Name``, each
        optionally followed by ``*``s.  Returns (type string, first token).
        """
        token = self.expect("kw")
        if token.text == "struct":
            name_token = self.expect("ident")
            type_name = name_token.text
        elif token.text in _TYPE_NAMES:
            type_name = token.text
        else:
            raise CompileError("expected a type, found %r" % token.text,
                               token.line, token.col)
        while self.accept("op", "*"):
            type_name += "*"
        return type_name, token

    def _at_type(self) -> bool:
        token = self.peek()
        return token.kind == "kw" and (token.text in _TYPE_NAMES
                                       or token.text == "struct")

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.check("eof"):
            if (self.check("kw", "struct")
                    and self.peek(1).kind == "ident"
                    and self.peek(2).kind == "op"
                    and self.peek(2).text == "{"):
                unit.structs.append(self._parse_struct_decl())
                continue
            type_name, type_token = self._parse_type()
            name_token = self.expect("ident")
            if self.check("op", "("):
                unit.functions.append(
                    self._parse_funcdef(type_name, type_token, name_token))
            else:
                unit.globals.append(
                    self._parse_global(type_name, type_token, name_token))
        return unit

    def _parse_struct_decl(self) -> ast.StructDecl:
        struct_token = self.advance()             # 'struct'
        name_token = self.expect("ident")
        decl = ast.StructDecl(name=name_token.text, line=struct_token.line)
        self.expect("op", "{")
        while not self.check("op", "}"):
            ftype, ftoken = self._parse_type()
            if ftype == "void":
                raise CompileError("struct field cannot have type void",
                                   ftoken.line, ftoken.col)
            fname = self.expect("ident")
            if self.check("op", "["):
                raise CompileError(
                    "array fields are not supported in structs",
                    fname.line, fname.col)
            self.expect("op", ";")
            if any(existing == fname.text for _, existing in decl.fields):
                raise CompileError(
                    "duplicate field %r in struct %s"
                    % (fname.text, decl.name), fname.line, fname.col)
            decl.fields.append((ftype, fname.text))
        self.expect("op", "}")
        self.expect("op", ";")
        return decl

    def _parse_global(self, type_name: str, type_token: Token,
                      name_token: Token) -> ast.GlobalDecl:
        decl = ast.GlobalDecl(type_name=type_name, name=name_token.text,
                              line=type_token.line)
        if self.accept("op", "["):
            size_token = self.expect("int")
            decl.array_size = int(size_token.value)
            self.expect("op", "]")
        if self.accept("op", "="):
            decl.init = self._parse_global_init()
        self.expect("op", ";")
        return decl

    def _parse_global_init(self) -> List:
        if self.accept("op", "{"):
            values = []
            while not self.check("op", "}"):
                values.append(self._parse_number_literal())
                if not self.accept("op", ","):
                    break
            self.expect("op", "}")
            return values
        return [self._parse_number_literal()]

    def _parse_number_literal(self):
        negative = bool(self.accept("op", "-"))
        token = self.peek()
        if token.kind not in ("int", "float"):
            raise CompileError("expected numeric literal", token.line, token.col)
        self.advance()
        value = token.value
        return -value if negative else value

    def _parse_funcdef(self, type_name: str, type_token: Token,
                       name_token: Token) -> ast.FuncDef:
        func = ast.FuncDef(name=name_token.text, return_type=type_name,
                           line=type_token.line)
        self.expect("op", "(")
        if not self.check("op", ")"):
            while True:
                ptype, ptoken = self._parse_type()
                if ptype == "void":
                    raise CompileError("bad parameter type %r" % ptype,
                                       ptoken.line, ptoken.col)
                pname = self.expect("ident")
                func.params.append((ptype, pname.text))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        func.body = self.parse_block()
        return func

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_token = self.expect("op", "{")
        block = ast.Block(line=open_token.line)
        while not self.check("op", "}"):
            block.body.append(self.parse_stmt())
        self.expect("op", "}")
        return block

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "op" and token.text == "{":
            return self.parse_block()
        if token.kind == "kw":
            if token.text in ("int", "float", "struct"):
                return self._parse_local_decl()
            if token.text == "delete":
                self.advance()
                target = self.parse_expr()
                self.expect("op", ";")
                return ast.Delete(line=token.line, target=target,
                                  col=token.col)
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "do":
                return self._parse_do_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "switch":
                return self._parse_switch()
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=token.line)
            if token.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expr()
                self.expect("op", ";")
                return ast.Return(line=token.line, value=value)
            raise CompileError("unexpected keyword %r" % token.text,
                               token.line, token.col)
        stmt = self._parse_assign_or_expr()
        self.expect("op", ";")
        return stmt

    def _parse_local_decl(self) -> ast.LocalDecl:
        type_name, type_token = self._parse_type()
        if type_name == "void":
            raise CompileError("local cannot have type void",
                               type_token.line, type_token.col)
        name_token = self.expect("ident")
        decl = ast.LocalDecl(type_name=type_name, name=name_token.text,
                             line=type_token.line)
        if self.accept("op", "["):
            size_token = self.expect("int")
            decl.array_size = int(size_token.value)
            self.expect("op", "]")
        if self.accept("op", "="):
            decl.init = self.parse_expr()
        self.expect("op", ";")
        return decl

    _COMPOUND_OPS = {
        "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
        "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
    }

    def _parse_assign_or_expr(self) -> ast.Stmt:
        """An assignment (plain, compound, ``++``/``--``) or a bare
        expression (no trailing ``;`` consumed)."""
        token = self.peek()
        expr = self.parse_expr()
        if self.accept("op", "="):
            value = self.parse_expr()
            return ast.Assign(line=token.line, target=expr, value=value)
        for text, op in self._COMPOUND_OPS.items():
            if self.accept("op", text):
                value = self.parse_expr()
                return ast.Assign(line=token.line, target=expr,
                                  value=value, op=op)
        if self.accept("op", "++"):
            return ast.Assign(line=token.line, target=expr,
                              value=ast.NumberLit(line=token.line, value=1),
                              op="+")
        if self.accept("op", "--"):
            return ast.Assign(line=token.line, target=expr,
                              value=ast.NumberLit(line=token.line, value=1),
                              op="-")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_if(self) -> ast.If:
        token = self.advance()
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        otherwise = None
        if self.accept("kw", "else"):
            otherwise = self.parse_stmt()
        return ast.If(line=token.line, cond=cond, then=then,
                      otherwise=otherwise)

    def _parse_while(self) -> ast.While:
        token = self.advance()
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.While(line=token.line, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self.advance()
        body = self.parse_stmt()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(line=token.line, body=body, cond=cond)

    def _parse_for(self) -> ast.For:
        token = self.advance()
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            init = self._parse_assign_or_expr()
        self.expect("op", ";")
        cond = None
        if not self.check("op", ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self._parse_assign_or_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.For(line=token.line, init=init, cond=cond, step=step,
                       body=body)

    def _parse_switch(self) -> ast.Switch:
        token = self.advance()
        self.expect("op", "(")
        scrutinee = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", "{")
        switch = ast.Switch(line=token.line, scrutinee=scrutinee)
        current: Optional[ast.SwitchCase] = None
        while not self.check("op", "}"):
            if self.check("kw", "case"):
                case_token = self.advance()
                value = self._parse_number_literal()
                if not isinstance(value, int):
                    raise CompileError("case labels must be integers",
                                       case_token.line, case_token.col)
                self.expect("op", ":")
                current = ast.SwitchCase(value=value, line=case_token.line)
                switch.cases.append(current)
            elif self.check("kw", "default"):
                default_token = self.advance()
                self.expect("op", ":")
                current = ast.SwitchCase(value=None, line=default_token.line)
                switch.cases.append(current)
            else:
                if current is None:
                    bad = self.peek()
                    raise CompileError("statement before first case label",
                                       bad.line, bad.col)
                current.body.append(self.parse_stmt())
        self.expect("op", "}")
        return switch

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.accept("op", "?"):
            then = self.parse_expr()
            self.expect("op", ":")
            otherwise = self._parse_ternary()
            return ast.Conditional(line=cond.line, cond=cond, then=then,
                                   otherwise=otherwise)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(line=left.line, op=token.text, left=left,
                              right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.check("op", "["):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(line=expr.line, base=expr, index=index)
            elif self.check("op", ".") or self.check("op", "->"):
                arrow = self.advance().text == "->"
                field_token = self.expect("ident")
                expr = ast.Member(line=field_token.line, base=expr,
                                  name=field_token.text, arrow=arrow,
                                  col=field_token.col)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "kw" and token.text == "new":
            self.advance()
            name_token = self.expect("ident")
            return ast.New(line=token.line, type_name=name_token.text,
                           col=name_token.col)
        if token.kind == "kw" and token.text == "sizeof":
            self.advance()
            self.expect("op", "(")
            if self.check("ident"):
                # Bare struct name, matching `new Name` (no keyword).
                type_token = self.advance()
                type_name = type_token.text
                while self.accept("op", "*"):
                    type_name += "*"
            else:
                type_name, type_token = self._parse_type()
            self.expect("op", ")")
            return ast.SizeOf(line=token.line, type_name=type_name,
                              col=type_token.col)
        if token.kind in ("int", "float"):
            self.advance()
            return ast.NumberLit(line=token.line, value=token.value)
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                call = ast.Call(line=token.line, name=token.text)
                if not self.check("op", ")"):
                    while True:
                        call.args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return call
            return ast.VarRef(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise CompileError("unexpected token %r" % (token.text or token.kind),
                           token.line, token.col)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source into a :class:`~repro.lang.ast.TranslationUnit`."""
    return _Parser(tokenize(source)).parse_unit()
