"""Symbol resolution and storage layout for MiniC functions.

Storage classes, chosen per local:

* **register** — scalar locals whose address is never taken are promoted to
  callee-saved registers ``r4``..``r7`` in declaration order (first four).
  Functions save/restore exactly the callee-saved registers they use, with
  ``push``/``pop`` pairs in the prologue/epilogue — the save/restore pairs
  of paper Section 5.2.
* **stack** — arrays, address-taken scalars, and overflow locals live in
  the frame at ``fp - k``.
* **param** — arguments are pushed by the caller and addressed at
  ``fp + 2 + i`` (``fp`` slot 0 holds the saved frame pointer, slot 1 the
  return address).

The eval registers ``r0``..``r2`` (with ``r3`` as spill scratch) are
caller-clobbered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.lang import ast
from repro.lang.errors import CompileError

#: Callee-saved registers available for register-allocated locals.
CALLEE_SAVED = ("r4", "r5", "r6", "r7")

#: First argument slot relative to fp (0: saved fp, 1: return address).
PARAM_BASE_OFFSET = 2


@dataclass
class StructField:
    """One named field: its word offset inside the struct and word size."""

    name: str
    type_name: str
    offset: int
    size: int


@dataclass
class StructLayout:
    """Field offsets and total word size of one ``struct`` declaration."""

    name: str
    fields: Dict[str, StructField] = field(default_factory=dict)
    size: int = 0


def is_struct_value(type_name: str, structs: Dict[str, StructLayout]) -> bool:
    """True for a struct *by value* (not a pointer to one)."""
    return not type_name.endswith("*") and type_name in structs


def type_size(type_name: str, structs: Dict[str, StructLayout],
              line: Optional[int] = None, col: Optional[int] = None) -> int:
    """Word size of a type: scalars and pointers are one word; a struct
    by value is the sum of its field sizes."""
    if type_name.endswith("*"):
        return 1
    if type_name in ("int", "float", "void"):
        return 1
    layout = structs.get(type_name)
    if layout is None:
        raise CompileError("unknown struct type %r" % type_name, line, col)
    return layout.size


def build_struct_table(
        decls: List[ast.StructDecl]) -> Dict[str, StructLayout]:
    """Resolve field offsets and sizes for every ``struct`` declaration.

    Pointer fields are one word regardless of pointee; struct-by-value
    fields embed the nested struct at a cumulative offset.  Recursive
    by-value embedding is rejected (the size would be infinite) — use a
    pointer field, which is how the workloads build lists and trees.
    """
    by_name: Dict[str, ast.StructDecl] = {}
    for decl in decls:
        if decl.name in by_name:
            raise CompileError("duplicate struct %r" % decl.name, decl.line)
        by_name[decl.name] = decl

    table: Dict[str, StructLayout] = {}
    resolving: List[str] = []

    def resolve(name: str, line: int) -> StructLayout:
        done = table.get(name)
        if done is not None:
            return done
        decl = by_name.get(name)
        if decl is None:
            raise CompileError("unknown struct type %r" % name, line)
        if name in resolving:
            raise CompileError(
                "recursive struct %r embeds itself by value "
                "(use a pointer field)" % name, decl.line)
        resolving.append(name)
        layout = StructLayout(name=name)
        offset = 0
        for ftype, fname in decl.fields:
            if ftype.endswith("*") or ftype in ("int", "float"):
                size = 1
            else:
                size = resolve(ftype, decl.line).size
            layout.fields[fname] = StructField(
                name=fname, type_name=ftype, offset=offset, size=size)
            offset += size
        layout.size = max(offset, 1)
        resolving.pop()
        table[name] = layout
        return layout

    for decl in decls:
        resolve(decl.name, decl.line)
    return table


@dataclass
class LocalSlot:
    """Where one local lives."""

    name: str
    storage: str                 # "reg" | "stack" | "param"
    reg: Optional[str] = None    # for "reg"
    offset: int = 0              # fp-relative, for "stack"/"param"
    array_size: Optional[int] = None
    type_name: str = "int"
    size: int = 1                # word size (struct values occupy several)


@dataclass
class FunctionLayout:
    """Complete storage layout of one function."""

    name: str
    slots: Dict[str, LocalSlot] = field(default_factory=dict)
    used_callee_saved: List[str] = field(default_factory=list)
    stack_words: int = 0
    params: List[str] = field(default_factory=list)


def _collect_decls(stmt: ast.Stmt, out: List[ast.LocalDecl]) -> None:
    if isinstance(stmt, ast.Block):
        for child in stmt.body:
            _collect_decls(child, out)
    elif isinstance(stmt, ast.LocalDecl):
        out.append(stmt)
    elif isinstance(stmt, ast.If):
        if stmt.then:
            _collect_decls(stmt.then, out)
        if stmt.otherwise:
            _collect_decls(stmt.otherwise, out)
    elif isinstance(stmt, ast.While):
        if stmt.body:
            _collect_decls(stmt.body, out)
    elif isinstance(stmt, ast.DoWhile):
        if stmt.body:
            _collect_decls(stmt.body, out)
    elif isinstance(stmt, ast.For):
        if stmt.init:
            _collect_decls(stmt.init, out)
        if stmt.body:
            _collect_decls(stmt.body, out)
    elif isinstance(stmt, ast.Switch):
        for case in stmt.cases:
            for child in case.body:
                _collect_decls(child, out)


def _walk_address_taken(func: ast.FuncDef) -> Set[str]:
    """Names whose address is taken with ``&`` anywhere in the function."""
    taken: Set[str] = set()

    def walk(node) -> None:
        if isinstance(node, ast.Unary) and node.op == "&":
            target = node.operand
            if isinstance(target, ast.VarRef):
                taken.add(target.name)
            elif (isinstance(target, ast.Index)
                  and isinstance(target.base, ast.VarRef)):
                taken.add(target.base.name)
        for value in vars(node).values():
            if isinstance(value, (ast.Expr, ast.Stmt)):
                walk(value)
            elif isinstance(value, ast.SwitchCase):
                for child in value.body:
                    walk(child)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, (ast.Expr, ast.Stmt)):
                        walk(item)
                    elif isinstance(item, ast.SwitchCase):
                        for child in item.body:
                            walk(child)
    if func.body is not None:
        walk(func.body)
    return taken


def layout_function(func: ast.FuncDef,
                    structs: Optional[Dict[str, StructLayout]] = None
                    ) -> FunctionLayout:
    """Compute the storage layout for ``func``.

    Struct-valued locals live on the stack occupying their full word
    size; struct-valued parameters are passed by value (the caller
    pushes every word), so parameter offsets accumulate by size.
    Pointer-typed scalars register-allocate exactly like ints.

    Raises :class:`CompileError` on duplicate locals or param shadowing.
    """
    structs = structs or {}
    layout = FunctionLayout(name=func.name)
    taken = _walk_address_taken(func)

    param_offset = PARAM_BASE_OFFSET
    for ptype, pname in func.params:
        if pname in layout.slots:
            raise CompileError("duplicate parameter %r" % pname, func.line)
        psize = type_size(ptype, structs, func.line)
        layout.slots[pname] = LocalSlot(
            name=pname, storage="param",
            offset=param_offset, type_name=ptype, size=psize)
        layout.params.append(pname)
        param_offset += psize

    decls: List[ast.LocalDecl] = []
    if func.body is not None:
        _collect_decls(func.body, decls)

    free_regs = list(CALLEE_SAVED)
    cursor = 1
    for decl in decls:
        if decl.name in layout.slots:
            raise CompileError(
                "duplicate local %r in %s" % (decl.name, func.name), decl.line)
        size = type_size(decl.type_name, structs, decl.line)
        struct_value = is_struct_value(decl.type_name, structs)
        if (decl.array_size is None and not struct_value
                and decl.name not in taken and free_regs):
            reg = free_regs.pop(0)
            layout.slots[decl.name] = LocalSlot(
                name=decl.name, storage="reg", reg=reg,
                type_name=decl.type_name)
            layout.used_callee_saved.append(reg)
        elif decl.array_size is None:
            base_offset = -(cursor + size - 1)
            layout.slots[decl.name] = LocalSlot(
                name=decl.name, storage="stack", offset=base_offset,
                type_name=decl.type_name, size=size)
            cursor += size
        else:
            if decl.array_size <= 0:
                raise CompileError(
                    "array %r must have positive size" % decl.name, decl.line)
            words = decl.array_size * size
            base_offset = -(cursor + words - 1)
            layout.slots[decl.name] = LocalSlot(
                name=decl.name, storage="stack", offset=base_offset,
                array_size=decl.array_size, type_name=decl.type_name,
                size=size)
            cursor += words
    layout.stack_words = cursor - 1
    return layout
