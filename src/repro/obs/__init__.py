"""Cross-cutting observability for the DrDebug pipeline (ISSUE 3).

Public surface::

    from repro.obs import OBS            # the process-wide registry
    OBS.enable()                          # or REPRO_OBS=1 / --obs
    OBS.inc("vm.runs"); OBS.add("vm.steps", n)
    with OBS.span("slicing.trace") as span: ...
    OBS.snapshot(); OBS.save("obs.json")

See :mod:`repro.obs.registry` for the zero-overhead-when-disabled design
and :mod:`repro.obs.report` for the ``repro obs report`` renderer.
"""

from repro.obs.registry import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    OBS,
    Counter,
    Histogram,
    NullCounter,
    NullHistogram,
    ObsRegistry,
    Span,
)
from repro.obs.report import (
    LAYERS,
    format_report,
    layer_totals,
    run_demo_cycle,
)

__all__ = [
    "OBS",
    "ObsRegistry",
    "Counter",
    "NullCounter",
    "NULL_COUNTER",
    "Histogram",
    "NullHistogram",
    "NULL_HISTOGRAM",
    "Span",
    "LAYERS",
    "format_report",
    "layer_totals",
    "run_demo_cycle",
]
