"""Rendering and demonstrating the observability registry.

:func:`format_report` renders :meth:`~repro.obs.registry.ObsRegistry.snapshot`
as the grouped text table ``repro obs report`` prints.  :func:`run_demo_cycle`
drives one complete DrDebug cyclic-debugging loop — Maple exposure,
record, replay, slicing, slice pinball, reverse debugging, online race
detection, a short bug hunt, plus a pass through the debug service's
store + session cache — so a single ``repro obs report`` run exhibits
nonzero counters from every instrumented layer (vm, pinplay, slicing,
reexec, debugger, maple, serve, index_cache, detect, hunt).
"""

from __future__ import annotations

from repro.obs.registry import OBS

#: The layer prefixes the report groups by (and the acceptance criterion
#: checks): every one of these must show activity after a demo cycle.
LAYERS = ("vm", "pinplay", "slicing", "reexec", "debugger", "maple",
          "serve", "index_cache", "detect", "hunt")

#: A lost-update atomicity bug (two unsynchronized increments): small
#: enough to run in well under a second, racy enough that Maple's
#: profiling + active-scheduling loop reliably exposes the failing
#: interleaving — the full workflow of paper Section 6.
DEMO_SOURCE = """
int x;
int bump(int unused) {
    x = x + 1;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 0);
    b = spawn(bump, 0);
    join(a);
    join(b);
    assert(x == 2, 11);
    return 0;
}
"""


def run_demo_cycle() -> dict:
    """One full cyclic-debugging loop under observability.

    All instrumented layers report into the process-wide :data:`OBS`
    registry, so that is the registry this drives: it is enabled for the
    duration (previous enablement restored on exit) and its snapshot is
    returned.  Callers wanting isolation should save/restore or reset
    ``OBS`` around the call.
    """
    registry = OBS
    from repro.debugger import DrDebugSession
    from repro.lang import compile_source
    from repro.maple import expose_and_record
    from repro.pinplay import replay
    from repro.slicing import SlicingSession

    with registry.scope(enabled=True):
        program = compile_source(DEMO_SOURCE, name="obs_demo")

        # Maple: profile interleavings, force the untested one, record.
        result = expose_and_record(program, profile_seeds=range(4))
        if not result.exposed:   # pragma: no cover - the bug is reliable
            raise RuntimeError("demo cycle failed to expose the bug")
        pinball = result.pinball

        # PinPlay: deterministic replay of the captured region.
        replay(pinball, program)

        # Slicing: traced replay, failure slice, slice pinball.
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        slice_pinball = session.make_slice_pinball(dslice)
        replay(slice_pinball, program, verify=False)

        # Re-execution slicing: the same failure query answered by
        # checkpoint-bounded window re-replays over the pinball instead
        # of a resident full trace (``--index reexec``).
        from repro.slicing import SliceOptions
        reexec = SlicingSession(pinball, program,
                                SliceOptions(index="reexec"))
        reexec.slice_for(reexec.failure_criterion())

        # Detect + hunt: one online race-detection pass over the
        # recording, then the bug firehose — candidate schedules within
        # the recorded envelope, classification, minimization.
        from repro.analysis.hunt import hunt as run_hunt
        from repro.detect import detect_races
        detect_races(pinball, program)
        run_hunt(pinball, program, budget=4, profile_seeds=2,
                 minimize_budget=8, slice_reports=False)

        # Debugger: reverse-capable cyclic session over the same pinball.
        debug = DrDebugSession(pinball, program)
        debug.enable_reverse_debugging(interval=16)
        debug.run()
        debug.reverse_stepi(4)
        debug.continue_()

        # Serve: the recording as a durable store object + a resident
        # session answering a repeat query from the index LRU (the
        # service's hot path, minus the TCP/process plumbing).
        import tempfile

        from repro.serve.sessions import SessionManager
        from repro.serve.store import PinballStore

        with tempfile.TemporaryDirectory() as root:
            store = PinballStore(root)
            source_sha = store.put_source(DEMO_SOURCE, "obs_demo",
                                          tags=("demo",))
            key = store.put_pinball(pinball, tags=("demo",),
                                    meta={"source_sha": source_sha})
            # Re-putting the identical recording dedups to the same key.
            store.put_pinball(pinball, meta={"source_sha": source_sha})
            manager = SessionManager(store, max_entries=2)
            resident = manager.open(key, source_sha, "obs_demo")  # miss
            manager.open(key, source_sha, "obs_demo")             # hit
            resident.slice_for(resident.failure_criterion())
            store.gc()   # nothing untagged; exercises the counter path

        return registry.snapshot()


def layer_totals(snapshot: dict) -> dict:
    """Sum of counter values per layer prefix (report + acceptance check)."""
    totals = {layer: 0 for layer in LAYERS}
    for name, value in snapshot.get("counters", {}).items():
        prefix = name.split(".", 1)[0]
        if prefix in totals:
            totals[prefix] += value
    return totals


def format_report(snapshot: dict) -> str:
    """Human-readable text rendering of a registry snapshot."""
    lines = ["observability report", "====================", ""]
    counters = snapshot.get("counters", {})
    by_layer = {}
    for name, value in counters.items():
        prefix = name.split(".", 1)[0]
        by_layer.setdefault(prefix, []).append((name, value))
    ordered = [layer for layer in LAYERS if layer in by_layer]
    ordered += [layer for layer in sorted(by_layer) if layer not in LAYERS]
    for layer in ordered:
        lines.append("[%s]" % layer)
        for name, value in by_layer[layer]:
            lines.append("  %-40s %12d" % (name, value))
        lines.append("")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("[histograms]")
        for name, data in histograms.items():
            lines.append(
                "  %-40s n=%-8d mean=%-10.1f min=%-8s max=%s"
                % (name, data["count"], data["mean"],
                   data["min"], data["max"]))
        lines.append("")
    spans = snapshot.get("spans", {})
    if spans:
        lines.append("[spans]")
        for path, data in spans.items():
            lines.append(
                "  %-40s n=%-8d total=%8.4fs  max=%8.4fs"
                % (path, data["count"], data["total_sec"],
                   data["max_sec"] or 0.0))
        lines.append("")
    if not counters and not spans:
        lines.append("(no metrics recorded; enable with --obs or "
                     "REPRO_OBS=1)")
    return "\n".join(lines).rstrip() + "\n"
