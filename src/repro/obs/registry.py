"""The process-wide observability registry: counters, histograms, spans.

Design constraints (ISSUE 3, and the rr engineering report's lesson that
record/replay only stays deployable when its overhead is continuously
*measured*):

* **The disabled path is near-free.**  ``OBS`` starts disabled; every
  mutator (:meth:`ObsRegistry.add`, :meth:`~ObsRegistry.inc`,
  :meth:`~ObsRegistry.observe`) begins with a single attribute test and
  returns immediately — no dict lookups, no allocation.  Hot loops go one
  step further and hoist ``OBS.enabled`` into a local once per run, then
  flush aggregate deltas *after* the loop (see
  :meth:`repro.vm.machine.Machine.run`), so the per-step cost with
  observability off is at most one local-bool check.  The
  ``benchmarks/test_perf_obs_overhead.py`` guard pins this to within 5%
  of a build with the obs module stubbed out entirely.
* **Metrics observe, never perturb.**  Nothing in this module feeds back
  into guest-visible state; ``tests/obs/test_obs_differential.py`` proves
  byte-identical event streams, snapshots, pinballs and slices with
  observability on vs off.
* **Spans always measure.**  A :class:`Span` takes its two
  ``perf_counter`` readings whether or not the registry is enabled and
  exposes the result as :attr:`Span.elapsed` — that is what lets
  ``SlicingSession.trace_time`` / ``DependenceIndex.build_time`` keep
  their public timing attributes while the ad-hoc ``time.perf_counter``
  pairs they used to carry live here instead.  Only the *recording* of
  the span (under its "/"-joined nesting path) is gated on the registry.

Enabling: ``OBS.enable()`` (the CLI's ``--obs`` flag and
``SliceOptions(obs=True)`` call this), or the environment variable
``REPRO_OBS=1`` at import time.  ``repro obs report`` renders a summary;
:meth:`ObsRegistry.save` exports JSON for CI artifacts.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro import config as _config

__all__ = [
    "Counter", "NullCounter", "NULL_COUNTER",
    "Histogram", "NullHistogram", "NULL_HISTOGRAM",
    "Span", "ObsRegistry", "OBS",
]

_perf_counter = time.perf_counter


class Counter:
    """A named monotonically-growing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self) -> None:
        self.value += 1

    def add(self, n: int) -> None:
        self.value += n

    def __repr__(self) -> str:
        return "Counter(%r, %d)" % (self.name, self.value)


class NullCounter:
    """The do-nothing counter handed out while the registry is disabled.

    A module-level singleton: callers that cache the result of
    ``OBS.counter(...)`` while disabled hold an object whose mutators are
    empty methods — no branches, no state.
    """

    __slots__ = ()

    def inc(self) -> None:
        pass

    def add(self, n: int) -> None:
        pass

    def __repr__(self) -> str:
        return "NullCounter()"


NULL_COUNTER = NullCounter()

#: Default histogram bucket upper bounds (powers of four): wide enough
#: for step counts and byte sizes, cheap to search linearly.
_DEFAULT_BOUNDS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144,
                   1048576)


class Histogram:
    """A bucketed value distribution with count/total/min/max."""

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds=_DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)   # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class NullHistogram:
    """Disabled-path twin of :class:`Histogram`."""

    __slots__ = ()

    def observe(self, value) -> None:
        pass


NULL_HISTOGRAM = NullHistogram()


class _SpanStat:
    """Aggregate record of one span path."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if self.min is None or elapsed < self.min:
            self.min = elapsed
        if self.max is None or elapsed > self.max:
            self.max = elapsed

    def to_dict(self) -> dict:
        return {"count": self.count, "total_sec": self.total,
                "min_sec": self.min, "max_sec": self.max}


class Span:
    """A nested timed section.

    Always measures (so ``span.elapsed`` is usable by code that needs the
    wall time regardless of observability); records into the registry —
    under its "/"-joined nesting path — only if the registry was enabled
    when the span was entered.
    """

    __slots__ = ("registry", "name", "elapsed", "_path", "_started")

    def __init__(self, registry: "ObsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self.elapsed = 0.0
        self._path: Optional[str] = None
        self._started = 0.0

    def __enter__(self) -> "Span":
        registry = self.registry
        if registry.enabled:
            stack = registry._span_stack
            path = ((stack[-1] + "/" + self.name) if stack else self.name)
            self._path = path
            stack.append(path)
        self._started = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = _perf_counter() - self._started
        path = self._path
        if path is not None:
            registry = self.registry
            stack = registry._span_stack
            # Exceptions may unwind several spans out of order; pop back
            # to (and including) this span's frame.
            while stack:
                if stack.pop() == path:
                    break
            registry._record_span(path, self.elapsed)
            self._path = None


class ObsRegistry:
    """Process-wide named metrics.  See the module docstring."""

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: Dict[str, _SpanStat] = {}
        self._span_stack: List[str] = []

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded metrics (does not change enablement)."""
        self._counters.clear()
        self._histograms.clear()
        self._spans.clear()
        del self._span_stack[:]

    class _Scope:
        __slots__ = ("registry", "enabled", "_saved")

        def __init__(self, registry, enabled):
            self.registry = registry
            self.enabled = enabled
            self._saved = False

        def __enter__(self):
            self._saved = self.registry.enabled
            self.registry.enabled = self.enabled
            return self.registry

        def __exit__(self, exc_type, exc, tb):
            self.registry.enabled = self._saved

    def scope(self, enabled: bool = True) -> "_Scope":
        """Context manager that sets enablement and restores it on exit
        (tests use this to avoid leaking state across cases)."""
        return self._Scope(self, enabled)

    # -- mutators ----------------------------------------------------------

    def counter(self, name: str):
        """The named :class:`Counter`, or :data:`NULL_COUNTER` while
        disabled (no dict insert happens on the disabled path)."""
        if not self.enabled:
            return NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def inc(self, name: str) -> None:
        if not self.enabled:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.value += 1

    def add(self, name: str, n) -> None:
        if not self.enabled:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.value += n

    def observe(self, name: str, value) -> None:
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        histogram.observe(value)

    def histogram(self, name: str):
        if not self.enabled:
            return NULL_HISTOGRAM
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def span(self, name: str) -> Span:
        return Span(self, name)

    def _record_span(self, path: str, elapsed: float) -> None:
        # No enablement check here: the gate is at span *entry* (a span
        # that started while enabled records even if the registry was
        # disabled before it exited — its measurement is complete).
        stat = self._spans.get(path)
        if stat is None:
            stat = self._spans[path] = _SpanStat()
        stat.record(elapsed)

    # -- accessors ---------------------------------------------------------

    def value(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def span_stats(self) -> Dict[str, dict]:
        return {path: stat.to_dict()
                for path, stat in sorted(self._spans.items())}

    def snapshot(self) -> dict:
        """JSON-serializable dump of everything recorded so far."""
        return {
            "schema_version": 1,
            "enabled": self.enabled,
            "counters": self.counters(),
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self._histograms.items())},
            "spans": self.span_stats(),
        }

    def save(self, path: str) -> str:
        """Write :meth:`snapshot` as JSON to ``path``; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
        return path


#: The process-wide registry every layer reports into.
OBS = ObsRegistry()

if _config.obs_enabled():
    OBS.enable()
