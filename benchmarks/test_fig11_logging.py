"""Figure 11 — logging times for regions of varying size (PARSEC, 4 threads).

The paper sweeps main-thread region lengths from 10M to 1B instructions
over eight 4-threaded PARSEC runs and shows logging wall-clock time
growing with region length (seconds to a couple of minutes).  Scaled to
the interpreted substrate, we sweep 2k..32k and expect the same shape:
roughly linear growth, a few-x spread across kernels.
"""

import pytest

from benchmarks.conftest import record_table
from benchmarks.harness import measure_parsec_region
from repro.workloads import PARSEC_KERNELS

LENGTHS = (2_000, 8_000, 32_000)

_ROWS = []
_EXPECTED = len(PARSEC_KERNELS) * len(LENGTHS)

#: Replay-time results captured here too, consumed by test_fig12_replay.
SHARED_RESULTS = []


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("kernel", sorted(PARSEC_KERNELS))
def test_fig11_logging_time(benchmark, kernel, length):
    result = benchmark.pedantic(
        lambda: measure_parsec_region(kernel, length),
        rounds=1, iterations=1)
    row = {key: value for key, value in result.items()
           if not key.startswith("_")}
    _ROWS.append(row)
    SHARED_RESULTS.append(row)

    # The region really contains `length` main-thread instructions plus
    # the other threads' concurrent work (paper: 3-4x with 4 threads).
    assert result["total_instructions"] >= length
    assert 1.5 <= result["total_instructions"] / length <= 4.6

    if len(_ROWS) == _EXPECTED:
        rows = sorted(_ROWS, key=lambda r: (r["kernel"], r["length_main"]))
        record_table(
            "fig11",
            "Logging times (wall clock) for regions of varying sizes, "
            "PARSEC-like kernels, 4 threads",
            ["kernel", "kind", "length_main", "total_instructions",
             "logging_time_sec", "pinball_bytes"],
            rows,
            notes=("Paper: 10M-1B instruction regions log in seconds to "
                   "~2 minutes, growing with length. Scaled sweep "
                   "2k/8k/32k; check the per-kernel growth is roughly "
                   "linear in region length."))
        # Shape assertion: logging time grows with region length for
        # every kernel (allowing timer noise at the smallest sizes).
        by_kernel = {}
        for row in rows:
            by_kernel.setdefault(row["kernel"], []).append(
                (row["length_main"], row["logging_time_sec"]))
        for kernel_name, series in by_kernel.items():
            series.sort()
            assert series[-1][1] > series[0][1], (
                "logging time did not grow with region length for %s"
                % kernel_name)
