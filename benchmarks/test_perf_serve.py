"""Debug-service throughput — parallel workers and the resident-session LRU.

DrDebug's economics are record once, query many: a team attaches clients
to one resident service and issues slice queries against a shared
repository of recordings.  This benchmark measures the two levers the
service adds over the single-process CLI:

* **Pool parallelism** — a closed loop of client threads drives one
  slice query per stored recording (cold pool: every query pays a full
  traced replay + DDG build) against a 1-worker and a 4-worker pool.
  Session builds are CPU-bound and independent, so the 4-worker pool
  should finish the same request mix materially faster.
* **Session residency** — the same repeated query against a 1-worker
  pool with the index LRU enabled (hot: answered from the resident
  session's memoized DDG) vs disabled (cold: rebuild per query).

Each phase carries an ``obs`` block harvested from an *untimed*
instrumented re-run (workers started with the observability registry
enabled), so the timed sections stay obs-free.  Results go to
``BENCH_serve.json`` at the repo root.  In full mode the run asserts
the acceptance bars:

* 4-worker closed-loop throughput ≥ 2× the 1-worker pool;
* hot (LRU) per-query cost ≥ 5× cheaper than cold rebuilds.

Set ``REPRO_PERF_SMOKE=1`` (CI) for a reduced-size run that checks the
machinery and writes the JSON but skips the ratio assertions — shared
runners are too noisy for hard perf bars.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_serve.py -q -s
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, List

from repro.pinplay import RegionSpec, record_region
from repro.serve import PinballStore, WorkerPool
from repro.slicing import SlicingSession
from repro.vm import RandomScheduler
from repro.workloads import get_parsec, get_specomp

from repro.config import perf_smoke

from benchmarks.harness import available_cpus, check_parallel_bar

SMOKE = perf_smoke()
CPUS = available_cpus()

#: Kernel rotation for the recording corpus; ``units`` is bumped per
#: instance so every stored recording is a distinct program (distinct
#: content keys, distinct sessions — a genuinely cold build each).
if SMOKE:
    RECORDINGS = 6
    CLIENTS = 4
    HOT_QUERIES = 6
    KERNELS = [("parsec", "blackscholes", {"units": 20, "nthreads": 2})]
else:
    RECORDINGS = 20
    CLIENTS = 8
    HOT_QUERIES = 20
    KERNELS = [
        ("parsec", "blackscholes", {"units": 120, "nthreads": 4}),
        ("parsec", "fluidanimate", {"units": 80, "nthreads": 4}),
        ("specomp", "ammp", {"units": 80}),
        ("specomp", "mgrid", {"units": 60}),
    ]

WORKER_COUNTS = (1, 4)
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_serve.json")


@contextmanager
def _quiesced():
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _kernel_source(index: int):
    """The ``index``-th corpus entry: (name, MiniC source text)."""
    suite, kernel, params = KERNELS[index % len(KERNELS)]
    workload = (get_parsec(kernel) if suite == "parsec"
                else get_specomp(kernel))
    # Distinct size per instance -> distinct program -> distinct key.
    sized = dict(params, units=params["units"] + 2 * (index // len(KERNELS)))
    name = "%s-%d" % (kernel, index)
    return name, workload.source(**sized)


def _build_corpus(root: str):
    """Populate the store with RECORDINGS sized kernel workloads.

    Returns one request descriptor per recording: the content keys plus
    an explicit slice criterion (the recording's last memory read — the
    kernels run to completion, so there is no failure to default to).
    """
    from repro.lang import compile_source

    store = PinballStore(root)
    requests = []
    for index in range(RECORDINGS):
        name, source = _kernel_source(index)
        program = compile_source(source, name=name)
        pinball = record_region(program, RandomScheduler(seed=index),
                                RegionSpec())
        source_sha = store.put_source(source, name, tags=("bench",))
        pinball_sha = store.put_pinball(
            pinball, tags=("bench",),
            meta={"source_sha": source_sha, "program_name": name})
        session = SlicingSession(pinball, program)
        criterion = session.last_reads(1)[0]
        requests.append({
            "pinball": pinball_sha,
            "source": source_sha,
            "program_name": name,
            "criterion": list(criterion),
        })
    return requests


def _warm_processes(pool: WorkerPool) -> None:
    """One ping per worker: pays interpreter start + module imports.

    The benchmark compares *session build* parallelism, not Python
    import latency, so process warm-up stays outside the timed window.
    (``_execute`` performs its imports on every op, so a ping is enough.)
    """
    for worker in range(pool.workers):
        pool.call("ping", {}, worker=worker, timeout=600)


def _closed_loop(pool: WorkerPool, requests: List[dict],
                 clients: int) -> float:
    """Drive every request once through ``clients`` closed-loop threads.

    Each thread pops the next request, waits for its response, repeats —
    the classic closed-loop load model; returns the wall time.
    """
    cursor = iter(list(requests))
    cursor_lock = threading.Lock()
    errors: List[BaseException] = []

    def run():
        while True:
            with cursor_lock:
                request = next(cursor, None)
            if request is None:
                return
            try:
                # No affinity key: every request is a distinct cold
                # recording, so least-loaded routing measures build
                # parallelism without hash-bucket imbalance noise.
                pool.call("slice", dict(request), timeout=600)
            except BaseException as exc:   # noqa: BLE001 — report below
                errors.append(exc)
                return

    threads = [threading.Thread(target=run, daemon=True)
               for _ in range(clients)]
    with _quiesced():
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def _worker_obs(pool: WorkerPool) -> Dict[str, int]:
    """Summed serve.* counters across the pool's workers."""
    totals: Dict[str, int] = {}
    for worker in pool.worker_stats():
        for name, value in worker.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _bench_throughput(root: str, requests: List[dict]) -> List[dict]:
    """Phase 1: cold-pool closed-loop throughput, 1 vs 4 workers."""
    rows = []
    for workers in WORKER_COUNTS:
        with WorkerPool(root, workers=workers, queue_limit=256,
                        default_timeout=600,
                        lru_entries=RECORDINGS) as pool:
            _warm_processes(pool)
            elapsed = _closed_loop(pool, requests, CLIENTS)
            counts = pool.stats()
        # Untimed instrumented re-run for the obs block.
        with WorkerPool(root, workers=workers, queue_limit=256,
                        default_timeout=600, lru_entries=RECORDINGS,
                        obs=True) as pool:
            _closed_loop(pool, requests, CLIENTS)
            obs = _worker_obs(pool)
        rows.append({
            "phase": "throughput",
            "workers": workers,
            "clients": CLIENTS,
            "requests": len(requests),
            "wall_time_sec": elapsed,
            "requests_per_sec": len(requests) / elapsed,
            "pool_counts": counts,
            "obs": obs,
        })
    return rows


def _bench_session_cache(root: str, requests: List[dict]) -> List[dict]:
    """Phase 2: repeated query, resident session (hot) vs rebuild (cold)."""
    request = requests[0]
    rows = []
    for mode, lru_entries in (("hot", 4), ("cold", 0)):
        with WorkerPool(root, workers=1, queue_limit=64,
                        default_timeout=600,
                        lru_entries=lru_entries) as pool:
            # One untimed warm-up: in hot mode this builds the resident
            # session; in cold mode it only warms the process itself.
            _warm_processes(pool)
            pool.call("slice", dict(request), key=request["pinball"],
                      timeout=600)
            with _quiesced():
                started = time.perf_counter()
                for _ in range(HOT_QUERIES):
                    pool.call("slice", dict(request),
                              key=request["pinball"], timeout=600)
                elapsed = time.perf_counter() - started
        with WorkerPool(root, workers=1, queue_limit=64,
                        default_timeout=600, lru_entries=lru_entries,
                        obs=True) as pool:
            for _ in range(3):
                pool.call("slice", dict(request), key=request["pinball"],
                          timeout=600)
            obs = _worker_obs(pool)
        rows.append({
            "phase": "session_cache",
            "mode": mode,
            "lru_entries": lru_entries,
            "queries": HOT_QUERIES,
            "wall_time_sec": elapsed,
            "sec_per_query": elapsed / HOT_QUERIES,
            "obs": obs,
        })
    return rows


def test_perf_serve(tmp_path):
    root = str(tmp_path / "store")
    requests = _build_corpus(root)

    throughput = _bench_throughput(root, requests)
    cache = _bench_session_cache(root, requests)

    by_workers = {row["workers"]: row for row in throughput}
    by_mode = {row["mode"]: row for row in cache}
    speedups = {
        "throughput_4_vs_1_workers": (
            by_workers[4]["requests_per_sec"]
            / by_workers[1]["requests_per_sec"]),
        "hot_vs_cold_session": (by_mode["cold"]["sec_per_query"]
                                / by_mode["hot"]["sec_per_query"]),
    }
    report = {
        "schema_version": 2,      # 2: rows carry "obs" counter blocks
        "smoke": SMOKE,
        "cpus": CPUS,
        "recordings": RECORDINGS,
        "clients": CLIENTS,
        "phases": throughput + cache,
        "speedups": speedups,
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print("\nserve speedups: 4-vs-1 workers %.2fx throughput, hot-vs-cold "
          "resident session %.2fx per query"
          % (speedups["throughput_4_vs_1_workers"],
             speedups["hot_vs_cold_session"]))
    print("wrote %s" % path)

    # Session builds are CPU-bound processes: the parallelism bar only
    # means something when there are cores to parallelize on — the
    # shared gate prints-not-asserts in smoke mode and on small boxes.
    check_parallel_bar("serve 4-vs-1 worker throughput",
                       speedups["throughput_4_vs_1_workers"], 2.0,
                       smoke=SMOKE, cpus=CPUS)
    if not SMOKE:
        assert speedups["hot_vs_cold_session"] >= 5.0, (
            "resident session only %.2fx over rebuild-per-query "
            "(bar: 5x)" % speedups["hot_vs_cold_session"])
