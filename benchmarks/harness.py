"""Measurement routines shared by the per-table/figure benchmarks.

Each function reproduces one experiment's methodology from the paper's
Section 7, scaled for the interpreted substrate (regions of thousands to
tens of thousands of instructions instead of millions to a billion; the
scaling factor is uniform, so shapes — growth with region length, ratios
between configurations, who wins — are preserved).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang import compile_source
from repro.pinplay import Pinball, RegionSpec, record_region, relog, replay
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler
from repro.workloads import get_bug, get_parsec, get_specomp


def timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def measure_peak_alloc(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, peak_alloc_bytes)``.

    Peak *Python-heap* allocation during the call, via ``tracemalloc`` —
    a deterministic stand-in for peak-RSS deltas, which on a shared
    runner are polluted by allocator reuse and page-cache noise.  Used by
    the streamed-record flatness assertion (BENCH_pinball) and the
    peak-alloc column of BENCH_slicequery rows.
    """
    import gc
    import tracemalloc
    gc.collect()
    tracemalloc.start()
    try:
        result = fn(*args, **kwargs)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def measure_peak_rss(fn, *args, **kwargs):
    """Run ``fn`` in a forked child; return its peak-RSS *growth* in bytes.

    ``getrusage(RUSAGE_SELF).ru_maxrss`` is a process-lifetime high-water
    mark — in a long benchmark process it only remembers the largest
    phase ever run, not the call at hand.  A forked child gets fresh
    accounting that starts at the parent's current footprint, so the
    child-side growth (final ``ru_maxrss`` minus the child's baseline on
    entry) isolates what ``fn`` itself keeps resident, OS pages included
    (the complement of :func:`measure_peak_alloc`, which only sees the
    Python heap).  The child discards ``fn``'s result; only the byte
    count crosses the pipe.  Falls back to the peak-alloc measurement
    where fork is unavailable.
    """
    import multiprocessing
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:   # pragma: no cover - non-POSIX runner
        return measure_peak_alloc(fn, *args, **kwargs)[1]

    def _child(conn):
        import resource
        base = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        fn(*args, **kwargs)
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        conn.send(max(0, peak - base) * 1024)   # ru_maxrss is KiB on Linux
        conn.close()

    receiver, sender = ctx.Pipe(duplex=False)
    worker = ctx.Process(target=_child, args=(sender,))
    worker.start()
    sender.close()
    try:
        peak = receiver.recv()
    except EOFError:
        worker.join()
        raise RuntimeError(
            "peak-RSS child exited without reporting (exit code %s)"
            % worker.exitcode)
    finally:
        receiver.close()
    worker.join()
    return peak


# ---------------------------------------------------------------------------
# Parallel-speedup bar gating (shared by the serve and shard benchmarks)
# ---------------------------------------------------------------------------

def available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    ``os.cpu_count()`` reports the host's cores; a containerized CI
    runner pinned to one core must not be held to multi-core speedup
    bars, so parallel benchmarks gate on the affinity mask instead.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def check_parallel_bar(label: str, speedup: float, bar: float, *,
                       cpus_required: int = 4, smoke: bool = False,
                       cpus: Optional[int] = None) -> None:
    """Assert a parallelism speedup bar, degrading gracefully.

    The bar is only meaningful when there are cores to parallelize on:
    in smoke mode (``REPRO_PERF_SMOKE=1``, noisy shared runners) or on
    machines with fewer than ``cpus_required`` usable CPUs the measured
    ratio is printed but not asserted — correctness of the parallel
    build is asserted separately, in every mode, by the caller.
    """
    cpus = available_cpus() if cpus is None else cpus
    if smoke:
        print("(%s: %.2fx measured; smoke mode, %.1fx bar not asserted)"
              % (label, speedup, bar))
        return
    if cpus < cpus_required:
        print("(%s: %.2fx measured on %d CPU(s); %.1fx bar needs >= %d "
              "CPUs)" % (label, speedup, cpus, bar, cpus_required))
        return
    assert speedup >= bar, (
        "%s only %.2fx (bar: %.1fx on %d CPUs)"
        % (label, speedup, bar, cpus))


# ---------------------------------------------------------------------------
# Tables 2 and 3: the three data-race bugs
# ---------------------------------------------------------------------------

def measure_bug(name: str, whole_program: bool,
                warmup: int) -> Tuple[dict, Pinball, "object"]:
    """One row of Table 2 (buggy region) or Table 3 (whole program).

    Columns mirror the paper: executed instructions, instructions in the
    slice pinball (absolute and %), logging time and space, replay time,
    slicing time.
    """
    workload = get_bug(name)
    program = workload.build(warmup=warmup)

    # Expose the failure (not part of the timed pipeline).
    _probe, seed = workload.expose(program, seeds=range(64))
    if _probe is None:
        raise RuntimeError("bug %s did not manifest" % name)

    region = RegionSpec()
    if not whole_program:
        skip = workload.buggy_region_skip(program, seed)
        region = RegionSpec(skip=skip)

    scheduler = RandomScheduler(seed=seed, switch_prob=workload.switch_prob)
    pinball, logging_time = timed(
        record_region, program, scheduler, region)
    assert pinball.meta["failure"] is not None, "region lost the failure"
    space_bytes = pinball.size_bytes()

    _replayed, replay_time = timed(replay, pinball, program)

    session = SlicingSession(pinball, program)
    dslice, slicing_time = timed(
        session.slice_for, session.failure_criterion())
    slice_pb = session.make_slice_pinball(dslice)
    kept = slice_pb.meta["kept_instructions"]
    total = pinball.total_instructions

    row = {
        "program": name,
        "executed_instructions": total,
        "slice_pinball_instructions": kept,
        "slice_pinball_pct": round(100.0 * kept / total, 2),
        "logging_time_sec": logging_time,
        "space_bytes": space_bytes,
        "replay_time_sec": replay_time,
        "slicing_time_sec": slicing_time + session.trace_time,
    }
    return row, pinball, program


# ---------------------------------------------------------------------------
# Figures 11, 12: PARSEC logging and replay times vs region length
# ---------------------------------------------------------------------------

def units_for_length(kernel_name: str, target_length: int,
                     nthreads: int = 4) -> int:
    """Calibrate the kernel's ``units`` for a main-thread region length."""
    kernel = get_parsec(kernel_name)
    probe_units = 20
    program = kernel.build(units=probe_units, nthreads=nthreads)
    machine = Machine(program, scheduler=RoundRobinScheduler(25))
    machine.run(max_steps=2_000_000)
    per_unit = machine.threads[0].instr_count / probe_units
    return max(1, int(target_length / per_unit))


def measure_parsec_region(kernel_name: str, length: int,
                          nthreads: int = 4,
                          seed: int = 7) -> dict:
    """Log then replay one region: a point on Figures 11 and 12."""
    kernel = get_parsec(kernel_name)
    units = units_for_length(kernel_name, int(length * 1.5), nthreads)
    program = kernel.build(units=units, nthreads=nthreads)
    scheduler = RandomScheduler(seed=seed, switch_prob=0.05)
    region = RegionSpec(skip=50, length=length)

    pinball, logging_time = timed(record_region, program, scheduler, region)
    _machine, replay_time = timed(replay, pinball, program)

    return {
        "kernel": kernel_name,
        "kind": kernel.kind,
        "length_main": length,
        "total_instructions": pinball.total_instructions,
        "logging_time_sec": logging_time,
        "replay_time_sec": replay_time,
        "pinball_bytes": pinball.size_bytes(),
        "_pinball": pinball,
        "_program": program,
    }


# ---------------------------------------------------------------------------
# Figure 13: save/restore pruning on SPECOMP kernels
# ---------------------------------------------------------------------------

def measure_pruning(kernel_name: str, length: int, slices: int = 10,
                    max_save: int = 10) -> dict:
    """Average slice-size reduction from save/restore pruning."""
    kernel = get_specomp(kernel_name)
    units = max(1, int(length / 95))     # ~95 main instrs per unit
    program = kernel.build(units=units)
    pinball = record_region(
        program, RandomScheduler(seed=3, switch_prob=0.05),
        RegionSpec(skip=20, length=length))

    pruned_session = SlicingSession(
        pinball, program, SliceOptions(prune_save_restore=True,
                                       max_save=max_save))
    unpruned_session = SlicingSession(
        pinball, program, SliceOptions(prune_save_restore=False))

    criteria = pruned_session.last_reads(slices)
    reductions = []
    pruned_sizes = []
    unpruned_sizes = []
    for criterion in criteria:
        pruned = pruned_session.slice_for(criterion)
        unpruned = unpruned_session.slice_for(criterion)
        pruned_sizes.append(len(pruned))
        unpruned_sizes.append(len(unpruned))
        if len(unpruned):
            reductions.append(100.0 * (len(unpruned) - len(pruned))
                              / len(unpruned))
    return {
        "kernel": kernel_name,
        "length_main": length,
        "slices": len(criteria),
        "avg_unpruned_size": round(
            sum(unpruned_sizes) / len(unpruned_sizes), 1),
        "avg_pruned_size": round(sum(pruned_sizes) / len(pruned_sizes), 1),
        "avg_reduction_pct": round(sum(reductions) / len(reductions), 2)
        if reductions else 0.0,
        "verified_pairs": pruned_session.collector.save_restore.pair_count,
    }


# ---------------------------------------------------------------------------
# Figure 14: execution-slice replay vs full-region replay
# ---------------------------------------------------------------------------

def measure_exec_slice(kernel_name: str, length: int, slices: int = 5,
                       nthreads: int = 4) -> dict:
    """Replay time of slice pinballs vs the full region pinball."""
    kernel = get_parsec(kernel_name)
    units = units_for_length(kernel_name, int(length * 1.5), nthreads)
    program = kernel.build(units=units, nthreads=nthreads)
    pinball = record_region(
        program, RandomScheduler(seed=11, switch_prob=0.05),
        RegionSpec(skip=50, length=length))

    _machine, full_replay_time = timed(replay, pinball, program)

    session = SlicingSession(pinball, program)
    criteria = session.last_reads(slices)
    slice_times = []
    slice_fracs = []
    for criterion in criteria:
        dslice = session.slice_for(criterion)
        slice_pb = session.make_slice_pinball(dslice)
        kept = slice_pb.meta["kept_instructions"]
        slice_fracs.append(100.0 * kept / pinball.total_instructions)
        _m, slice_replay_time = timed(
            replay, slice_pb, program, verify=False)
        slice_times.append(slice_replay_time)

    avg_slice_time = sum(slice_times) / len(slice_times)
    return {
        "kernel": kernel_name,
        "length_main": length,
        "region_instructions": pinball.total_instructions,
        "full_replay_sec": full_replay_time,
        "avg_slice_replay_sec": avg_slice_time,
        "avg_slice_instr_pct": round(sum(slice_fracs) / len(slice_fracs), 1),
        "speedup_pct": round(
            100.0 * (full_replay_time - avg_slice_time) / full_replay_time,
            1),
    }


# ---------------------------------------------------------------------------
# Section 7 "Slicing overhead and precision"
# ---------------------------------------------------------------------------

def measure_slicing_overhead(kernel_name: str, length: int,
                             slices: int = 10, nthreads: int = 4) -> dict:
    """Trace-collection time, slice sizes and slicing times (last N reads)."""
    kernel = get_parsec(kernel_name)
    units = units_for_length(kernel_name, int(length * 1.5), nthreads)
    program = kernel.build(units=units, nthreads=nthreads)
    pinball = record_region(
        program, RandomScheduler(seed=5, switch_prob=0.05),
        RegionSpec(skip=50, length=length))

    session = SlicingSession(pinball, program)
    criteria = session.last_reads(slices)
    sizes = []
    times = []
    for criterion in criteria:
        dslice, elapsed = timed(session.slice_for, criterion)
        sizes.append(len(dslice))
        times.append(elapsed)
    return {
        "kernel": kernel_name,
        "length_main": length,
        "region_instructions": pinball.total_instructions,
        "trace_time_sec": session.trace_time,
        "preprocess_time_sec": session.preprocess_time,
        "avg_slice_size": round(sum(sizes) / len(sizes), 1),
        "avg_slice_time_sec": sum(times) / len(times),
        "slices": len(criteria),
    }
