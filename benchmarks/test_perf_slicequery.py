"""Slice-query throughput — build-once dependence index vs per-query scans.

The paper's cyclic-debugging workflow (Figure 4) replays a region pinball
once and then answers **many** interactive slice queries against the same
trace.  This benchmark measures that regime directly: for each workload
the trace is collected once, then a 50-query session (criteria cycled
from the last 10 memory reads, the paper's slicing-overhead experiment —
queries repeat, exactly as they do when a developer re-examines the same
failure neighborhood) runs under each index engine over the *same*
merged global trace:

* ``"ddg"``       — one O(|trace| + |edges|) pass compiles the CSR
  dependence graph, then queries are memoized int-array traversals;
* ``"columnar"``  — per-query backward scan with LP block skipping;
* ``"rows"``      — per-query backward scan over materialized records.

Per engine the benchmark reports build cost (DDG compilation / LP block
summaries) and query throughput separately, plus the DDG memo hit rates
that explain the amortization.  Each row also carries an ``obs`` block —
the slicing-layer counters (BFS visits, memo hits/misses, scanned
records, skipped blocks) harvested from the observability registry in an
*untimed* instrumented re-run of the same query mix, so the timed
sections stay obs-disabled.  Results go to ``BENCH_slicequery.json``
at the repo root.  In full mode the run *asserts* the acceptance bar:

* DDG aggregate session cost (build + 50 queries) ≥ 5× cheaper than the
  per-query columnar backward scan.

Set ``REPRO_PERF_SMOKE=1`` (CI) for a reduced-size run that checks the
machinery and writes the JSON but skips the ratio assertion — shared
runners are too noisy for hard perf bars.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_slicequery.py -q -s
"""

from __future__ import annotations

import gc
import json
import os
import time
from contextlib import contextmanager
from typing import Dict, List

from repro.obs import OBS
from repro.pinplay import RegionSpec, record_region
from repro.slicing import BackwardSlicer, SliceOptions, SlicingSession
from repro.vm import RandomScheduler
from repro.workloads import get_parsec, get_pointer, get_specomp

from repro.config import perf_smoke

from benchmarks.harness import measure_peak_alloc, measure_peak_rss

SMOKE = perf_smoke()

if SMOKE:
    WORKLOADS = [
        ("parsec", "blackscholes", {"units": 40, "nthreads": 4}),
        ("pointers", "list_chase", {"units": 25, "nthreads": 4}),
    ]
    REPEATS = 1
else:
    WORKLOADS = [
        ("parsec", "blackscholes", {"units": 200, "nthreads": 4}),
        ("parsec", "fluidanimate", {"units": 120, "nthreads": 4}),
        ("specomp", "ammp", {"units": 120}),
        ("specomp", "mgrid", {"units": 80}),
        ("pointers", "list_chase", {"units": 120, "nthreads": 4}),
        ("pointers", "tree_sum", {"units": 60, "nthreads": 4}),
    ]
    REPEATS = 5

INDEXES = ("ddg", "columnar", "rows")
#: The cyclic-debugging query mix: 50 queries cycled over the last 10
#: memory reads — the paper's slicing-overhead experiment slices "the
#: last 10 read instructions", and a cyclic session re-examines that same
#: failure neighborhood over and over.  The scans pay the full backward
#: walk on every repeat; the index answers repeats from its memos, which
#: is exactly the amortization this benchmark measures.
CRITERIA = 10
QUERIES = 50
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_slicequery.json")


@contextmanager
def _quiesced():
    """Collect garbage, then keep the collector out of the timed section."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _build(suite: str, kernel: str, params: dict):
    if suite == "parsec":
        return get_parsec(kernel).build(**params)
    if suite == "pointers":
        return get_pointer(kernel).build(**params)
    return get_specomp(kernel).build(**params)


def _bench_workload(suite: str, kernel: str, params: dict) -> List[dict]:
    """Trace once; run the 50-query session under every index engine."""
    program = _build(suite, kernel, params)
    pinball = record_region(program, RandomScheduler(seed=7), RegionSpec())
    # One traced replay serves every engine: the index engines differ only
    # in how they answer queries over the same merged global trace.
    session = SlicingSession(pinball, program,
                             options=SliceOptions(index="columnar"))
    restores = session.collector.save_restore.verified
    criteria = session.last_reads(CRITERIA)
    queries = [criteria[i % len(criteria)] for i in range(QUERIES)]

    # Correctness gate: all engines agree before anything is timed.
    reference = {}
    for index in INDEXES:
        slicer = BackwardSlicer(session.gtrace, verified_restores=restores,
                                options=SliceOptions(index=index))
        for criterion in criteria[:3]:
            nodes = frozenset(slicer.slice(criterion).nodes)
            if (criterion in reference
                    and reference[criterion] != nodes):
                raise AssertionError(
                    "index %r disagrees on %s criterion %r"
                    % (index, kernel, criterion))
            reference[criterion] = nodes

    # Repeats are interleaved across engines (engine A repeat 1, engine B
    # repeat 1, ..., engine A repeat 2, ...) so slowly-varying machine
    # noise hits every engine alike; best-of-N per engine then compares
    # each engine's quiet window.  Every repeat builds a *fresh* slicer —
    # cold index, cold memos.
    best: Dict[str, tuple] = {}
    for _ in range(REPEATS):
        for index in INDEXES:
            with _quiesced():
                started = time.perf_counter()
                slicer = BackwardSlicer(
                    session.gtrace, verified_restores=restores,
                    options=SliceOptions(index=index))
                if index == "ddg":
                    slicer.ddg            # force the one-shot compilation
                build_time = time.perf_counter() - started
                started = time.perf_counter()
                for criterion in queries:
                    slicer.slice(criterion)
                query_time = time.perf_counter() - started
            total = build_time + query_time
            if index not in best or total < best[index][0]:
                best[index] = (total, build_time, query_time,
                               slicer.index_stats())
    # Untimed peak-memory measurement of the same session per engine:
    # what the index itself costs — CSR arrays and memo tables for the
    # DDG, block summaries for the scans.  Two complementary views from
    # the shared harness helpers: peak Python-heap allocation
    # (deterministic, tracemalloc) and peak resident-set growth
    # (forked-child ``ru_maxrss``, OS pages included).
    peak_alloc: Dict[str, int] = {}
    peak_rss: Dict[str, int] = {}
    for index in INDEXES:
        def _session(index=index):
            slicer = BackwardSlicer(session.gtrace,
                                    verified_restores=restores,
                                    options=SliceOptions(index=index))
            for criterion in queries:
                slicer.slice(criterion)
        _, peak_alloc[index] = measure_peak_alloc(_session)
        peak_rss[index] = measure_peak_rss(_session)

    # Untimed instrumented re-run of the same query mix per engine: the
    # slicing-layer counters that explain the timings above.
    obs_stats: Dict[str, Dict[str, int]] = {}
    with OBS.scope(enabled=True):
        for index in INDEXES:
            OBS.reset()
            slicer = BackwardSlicer(session.gtrace,
                                    verified_restores=restores,
                                    options=SliceOptions(index=index))
            for criterion in queries:
                slicer.slice(criterion)
            obs_stats[index] = {
                name: value for name, value in OBS.counters().items()
                if name.startswith("slicing.")}
        OBS.reset()

    rows = []
    for index in INDEXES:
        total, build_time, query_time, stats = best[index]
        rows.append({
            "suite": suite,
            "kernel": kernel,
            "index": index,
            "trace_records": session.collector.store.total_records(),
            "queries": QUERIES,
            "build_time_sec": build_time,
            "query_time_sec": query_time,
            "total_time_sec": total,
            "queries_per_sec": QUERIES / query_time if query_time else 0.0,
            "edge_count": stats["edge_count"],
            "slice_cache_hits": stats["slice_cache_hits"],
            "closure_memo_hits": stats["closure_memo_hits"],
            "peak_alloc_bytes": peak_alloc[index],
            "peak_rss_bytes": peak_rss[index],
            "obs": obs_stats[index],
        })
    return rows


def _totals(rows: List[dict]) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for index in INDEXES:
        mine = [r for r in rows if r["index"] == index]
        query_time = sum(r["query_time_sec"] for r in mine)
        out[index] = {
            "build_time_sec": sum(r["build_time_sec"] for r in mine),
            "query_time_sec": query_time,
            "total_time_sec": sum(r["total_time_sec"] for r in mine),
            "queries_per_sec": (sum(r["queries"] for r in mine) / query_time
                                if query_time else 0.0),
        }
    return out


def test_perf_slicequery():
    rows: List[dict] = []
    for suite, kernel, params in WORKLOADS:
        rows.extend(_bench_workload(suite, kernel, params))
    totals = _totals(rows)

    speedups = {
        "session_vs_columnar": (totals["columnar"]["total_time_sec"]
                                / totals["ddg"]["total_time_sec"]),
        "session_vs_rows": (totals["rows"]["total_time_sec"]
                            / totals["ddg"]["total_time_sec"]),
        "query_vs_columnar": (totals["columnar"]["query_time_sec"]
                              / totals["ddg"]["query_time_sec"]),
    }
    report = {
        "schema_version": 3,      # 3: rows carry peak_rss_bytes too
        "smoke": SMOKE,
        "queries_per_workload": QUERIES,
        "distinct_criteria": CRITERIA,
        "workloads": rows,
        "totals": totals,
        "speedups": speedups,
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print("\nslice-query session speedups (ddg vs scans, build + %d "
          "queries): columnar %.2fx  rows %.2fx  (query-only vs columnar "
          "%.2fx)" % (QUERIES, speedups["session_vs_columnar"],
                      speedups["session_vs_rows"],
                      speedups["query_vs_columnar"]))
    print("wrote %s" % path)

    if not SMOKE:
        assert speedups["session_vs_columnar"] >= 5.0, (
            "ddg session speedup %.2fx below the 5x bar over the "
            "per-query columnar scan" % speedups["session_vs_columnar"])
