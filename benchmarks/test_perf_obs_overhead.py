"""Overhead guard: observability *disabled* must be (nearly) free.

The obs registry's design promise is that the disabled path costs at most
one hoisted local-bool check per VM step (see
``src/repro/obs/registry.py``).  This benchmark pins that promise:

* **baseline** — a subprocess that installs a do-nothing stub in place of
  ``repro.obs`` *before* importing ``repro``, so the timed loop runs a
  build with no observability code at all (the pre-obs world);
* **candidate** — a subprocess importing the real module with
  ``REPRO_OBS`` unset (obs present but disabled — the default everyone
  runs).

Both time the untraced-replay fast path on the
``benchmarks/test_perf_engine.py`` blackscholes workload (best-of-N
in-process, best-of-M subprocesses).  In full mode the candidate must be
within 5% of the baseline; under ``REPRO_PERF_SMOKE=1`` (CI) the
machinery runs at reduced size but the noise-sensitive ratio bar is
skipped.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_obs_overhead.py -q -s
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.config import perf_smoke

SMOKE = perf_smoke()

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir))

#: Workload size / repetition knobs.
if SMOKE:
    UNITS, REPLAY_REPEATS, SUBPROCESS_RUNS = 40, 2, 1
else:
    UNITS, REPLAY_REPEATS, SUBPROCESS_RUNS = 200, 5, 3

#: The allowed slowdown of "obs imported but disabled" over "no obs at
#: all" on the untraced replay fast path.
OVERHEAD_BAR = 1.05

#: Runs in a subprocess.  argv: mode ("stub"|"real"), units, repeats.
_WORKER = r"""
import gc, json, sys, time

mode, units, repeats = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])

if mode == "stub":
    # Install a do-nothing observability module *before* repro imports
    # it: this process measures a build with no obs code at all.
    import types
    _perf_counter = time.perf_counter

    class _StubSpan:
        __slots__ = ("elapsed", "_started")
        def __init__(self):
            self.elapsed = 0.0
            self._started = 0.0
        def __enter__(self):
            self._started = _perf_counter()
            return self
        def __exit__(self, exc_type, exc, tb):
            self.elapsed = _perf_counter() - self._started

    class _StubRegistry:
        enabled = False
        def enable(self): pass
        def disable(self): pass
        def inc(self, name): pass
        def add(self, name, n): pass
        def observe(self, name, value): pass
        def counter(self, name): return self
        def histogram(self, name): return self
        def span(self, name): return _StubSpan()

    _pkg = types.ModuleType("repro.obs")
    _mod = types.ModuleType("repro.obs.registry")
    _mod.OBS = _pkg.OBS = _StubRegistry()
    _pkg.registry = _mod
    sys.modules["repro.obs"] = _pkg
    sys.modules["repro.obs.registry"] = _mod

from repro.obs.registry import OBS
from repro.pinplay import RegionSpec, record_region, replay_machine
from repro.vm import RandomScheduler
from repro.workloads import get_parsec

if mode == "real":
    # Sanity: the real registry is in play and starts disabled.
    assert type(OBS).__name__ == "ObsRegistry", type(OBS)
    assert not OBS.enabled, "REPRO_OBS leaked into the candidate run"
else:
    assert type(OBS).__name__ == "_StubRegistry", type(OBS)

program = get_parsec("blackscholes").build(units=units, nthreads=4)
pinball = record_region(program, RandomScheduler(seed=7), RegionSpec())

best = float("inf")
gc.collect()
gc.disable()
for _ in range(repeats):
    machine = replay_machine(pinball, program)
    started = time.perf_counter()
    machine.run(max_steps=pinball.total_steps)
    best = min(best, time.perf_counter() - started)
print(json.dumps({"mode": mode, "steps": pinball.total_steps,
                  "best_replay_sec": best}))
"""


def _run_variant(mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_OBS", None)       # candidate must be *disabled*, not off
    env.pop("REPRO_ENGINE", None)    # both variants on the default engine
    completed = subprocess.run(
        [sys.executable, "-c", _WORKER, mode, str(UNITS),
         str(REPLAY_REPEATS)],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=600)
    assert completed.returncode == 0, (
        "%s variant failed:\n%s\n%s"
        % (mode, completed.stdout, completed.stderr))
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_disabled_obs_overhead_within_bar():
    best = {}
    for _ in range(SUBPROCESS_RUNS):
        # Interleave the variants so machine-load drift hits both equally.
        for mode in ("stub", "real"):
            result = _run_variant(mode)
            if (mode not in best
                    or result["best_replay_sec"]
                    < best[mode]["best_replay_sec"]):
                best[mode] = result

    assert best["stub"]["steps"] == best["real"]["steps"], (
        "variants executed different work")
    baseline = best["stub"]["best_replay_sec"]
    candidate = best["real"]["best_replay_sec"]
    ratio = candidate / baseline
    print("\nobs-disabled overhead: baseline %.4fs  candidate %.4fs  "
          "ratio %.3fx (bar %.2fx%s)"
          % (baseline, candidate, ratio, OVERHEAD_BAR,
             ", skipped: smoke" if SMOKE else ""))

    if not SMOKE:
        assert ratio <= OVERHEAD_BAR, (
            "obs-disabled replay is %.3fx the no-obs baseline "
            "(bar %.2fx) — the disabled path is no longer near-free"
            % (ratio, OVERHEAD_BAR))
