"""Ablation — the two Section 5 precision features, measured jointly.

DESIGN.md's remaining ablations: CFG refinement (5.1) and save/restore
pruning (5.2), compared over the same criteria on a workload exhibiting
both phenomena (switch dispatch + call-dense helpers).  Reported per
configuration: average slice size — refinement should only add (missing
control dependences recovered), pruning should only remove (spurious
chains cut).
"""

import pytest

from benchmarks.conftest import record_table
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RoundRobinScheduler

SOURCE = """
int acc; int w;
int helper(int a) {
    int t1; int t2;
    t1 = a * 3;
    t2 = t1 + a;
    return t2;
}
int step(int mode, int v) {
    int r;
    switch (mode) {
        case 0: r = v + 1; break;
        case 1: r = v * 2; break;
        case 2: r = v - 3; break;
        default: r = v;
    }
    return r;
}
int main() {
    int i; int v;
    v = 1;
    for (i = 0; i < 120; i = i + 1) {
        v = step(i % 3, v) % 10007;
        acc = acc + helper(v);
    }
    w = acc;
    return 0;
}
"""

CONFIGS = {
    "baseline (no refine, no prune)": SliceOptions(
        refine_cfg=False, prune_save_restore=False),
    "refine only": SliceOptions(refine_cfg=True, prune_save_restore=False),
    "prune only": SliceOptions(refine_cfg=False, prune_save_restore=True),
    "refine + prune (paper)": SliceOptions(
        refine_cfg=True, prune_save_restore=True),
}

_ROWS = []


@pytest.fixture(scope="module")
def pinball_and_program():
    program = compile_source(SOURCE, name="precision-ablation")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    return program, pinball


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_precision_config(benchmark, pinball_and_program, config):
    program, pinball = pinball_and_program
    options = CONFIGS[config]
    session = SlicingSession(pinball, program, options)
    criteria = session.last_reads(5)

    def run():
        return [session.slice_for(c) for c in criteria]

    slices = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_size = sum(len(s) for s in slices) / len(slices)
    _ROWS.append({
        "config": config,
        "avg_slice_size": round(avg_size, 1),
        "refinements": session.collector.registry.refinements,
        "verified_pairs": session.collector.save_restore.pair_count,
    })

    if len(_ROWS) == len(CONFIGS):
        record_table(
            "ablation_precision",
            "Precision-feature ablation: average slice size over 5 "
            "criteria under the four feature combinations",
            ["config", "avg_slice_size", "refinements", "verified_pairs"],
            sorted(_ROWS, key=lambda r: r["config"]),
            notes=("Refinement adds recovered control dependences "
                   "(slices grow vs baseline); pruning removes spurious "
                   "save/restore chains (slices shrink)."))
        sizes = {row["config"]: row["avg_slice_size"] for row in _ROWS}
        assert sizes["refine only"] >= sizes[
            "baseline (no refine, no prune)"]
        assert sizes["prune only"] <= sizes[
            "baseline (no refine, no prune)"]
        assert sizes["refine + prune (paper)"] <= sizes["refine only"]
