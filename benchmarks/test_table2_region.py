"""Table 2 — time and space overhead with the *buggy execution region*.

For each bug: capture from (just before) the root cause to the failure
point, then report executed instructions, slice-pinball instructions and
percentage, logging time/space, replay time, and slicing time — the
paper's exact columns.  The benchmarked operation is the whole
region-capture + replay + slice pipeline per bug.
"""

import pytest

from benchmarks.conftest import record_table
from benchmarks.harness import measure_bug
from repro.workloads import BUG_WORKLOADS

_ROWS = []

#: Short warm-up: the buggy region skips it anyway; keeps exposure quick.
WARMUP = 600


@pytest.mark.parametrize("name", sorted(BUG_WORKLOADS))
def test_table2_buggy_region(benchmark, name):
    row = benchmark.pedantic(
        lambda: measure_bug(name, whole_program=False, warmup=WARMUP)[0],
        rounds=1, iterations=1)
    _ROWS.append(row)
    # Shape checks mirroring the paper's observations: the slice pinball
    # is a strict subset of the region, and everything stays "reasonable"
    # (sub-minute on this substrate).
    assert 0 < row["slice_pinball_instructions"] < row["executed_instructions"]
    assert row["logging_time_sec"] < 60
    assert row["replay_time_sec"] < 60
    assert row["slicing_time_sec"] < 120

    if len(_ROWS) == len(BUG_WORKLOADS):
        record_table(
            "table2",
            "Time and space overhead for data race bugs with buggy "
            "execution region",
            ["program", "executed_instructions",
             "slice_pinball_instructions", "slice_pinball_pct",
             "logging_time_sec", "space_bytes", "replay_time_sec",
             "slicing_time_sec"],
            sorted(_ROWS, key=lambda r: r["program"]),
            notes=("Paper (native x86, regions up to 1M instr): slice "
                   "pinballs 0.01%-47.2% of region, logging 5.7-9.9s, "
                   "replay 1.5-3.9s, slicing 0.01-1.2s. Shape preserved: "
                   "region >> slice pinball; all phases fast."))
