"""Shared benchmark infrastructure: result recording and table rendering.

Every benchmark file computes its experiment's data once (module-scoped
fixture), registers the paper-style table with :func:`record_table`, and
wraps its headline timed operations in pytest-benchmark calls.  At session
end the collected tables are printed and written to
``benchmarks/results/experiments.json`` — the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_TABLES: Dict[str, dict] = {}


def record_table(experiment: str, title: str, columns: List[str],
                 rows: List[dict], notes: str = "") -> None:
    """Register one experiment's results for printing and persistence."""
    _TABLES[experiment] = {
        "title": title,
        "columns": columns,
        "rows": rows,
        "notes": notes,
    }


def render_table(experiment: str) -> str:
    table = _TABLES[experiment]
    columns = table["columns"]
    widths = [len(c) for c in columns]
    rendered_rows = []
    for row in table["rows"]:
        cells = []
        for index, column in enumerate(columns):
            value = row.get(column, "")
            if isinstance(value, float):
                cell = "%.3f" % value
            else:
                cell = str(value)
            widths[index] = max(widths[index], len(cell))
            cells.append(cell)
        rendered_rows.append(cells)
    lines = ["", "%s — %s" % (experiment, table["title"])]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    if table["notes"]:
        lines.append("note: %s" % table["notes"])
    return "\n".join(lines)


@pytest.fixture(scope="session", autouse=True)
def _flush_results():
    yield
    if not _TABLES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "experiments.json")
    existing = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
        except (ValueError, OSError):
            existing = {}
    existing.update(_TABLES)
    with open(path, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
    print()
    for experiment in sorted(_TABLES):
        print(render_table(experiment))
    print("\n[benchmarks] results merged into %s" % path)
