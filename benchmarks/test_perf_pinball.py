"""Pinball format v2 benchmark — streamed recording and O(chunk) rewind.

Three claims of the streaming container, each measured and (in full
mode) asserted:

* **record overhead** — the always-on fast record path, streaming v2
  frames to disk while executing, costs ≤ 1.5× an untraced run of the
  same schedule.  This is the "record everything, always" bar: tracing
  cheap enough to leave on.
* **flat record memory** — peak Python-heap allocation of a streamed
  record is flat in region length (a 4× longer region allocates < 2×
  the peak), because schedule runs and mem-order edges leave the
  process every 4096 entries instead of accumulating until a final JSON
  dump.
* **O(chunk) rewind** — a fresh debugger session's first rewind seeks
  the nearest embedded checkpoint and replays only the suffix, so
  ``seek(total - 10)`` costs the same at region length L and 4L (within
  20%).  This is the ``debugger.resume_distance`` histogram collapsing:
  rewind cost is bounded by the checkpoint interval, not the region.

Results go to ``BENCH_pinball.json`` at the repo root.  Set
``REPRO_PERF_SMOKE=1`` (CI) for a reduced-size run that checks the
machinery and writes the JSON but skips the ratio assertions — shared
runners are too noisy for hard perf bars.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_pinball.py -q -s
"""

from __future__ import annotations

import gc
import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Dict

from repro.config import perf_smoke
from repro.debugger import DrDebugSession
from repro.pinplay import Pinball, RegionSpec, record_region
from repro.vm import Machine, RandomScheduler
from repro.workloads import get_parsec

from benchmarks.harness import measure_peak_alloc, units_for_length

SMOKE = perf_smoke()

#: Short and long region lengths (main-thread instructions), 4x apart —
#: the two points every flatness/independence claim is checked between.
LENGTH = 2_000 if SMOKE else 8_000
LENGTH_LONG = 4 * LENGTH
#: Interval for the record-overhead run: a few interior checkpoints per
#: region (the sparse end of the knob's tradeoff — see EXPERIMENTS.md;
#: denser checkpointing buys cheaper rewind at record-time cost).
RECORD_INTERVAL = LENGTH
#: Interval for the rewind/memory runs: dense checkpoints, so the seek
#: suffix stays short and the streamed-out frame count is large enough
#: to make the flat-memory claim meaningful.
REWIND_INTERVAL = 250
REPEATS = 1 if SMOKE else 5
KERNEL = "fluidanimate"
SEED = 7
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_pinball.json")


@contextmanager
def _quiesced():
    """Collect garbage, then keep the collector out of the timed section."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _program():
    units = units_for_length(KERNEL, int(LENGTH_LONG * 1.5), nthreads=4)
    return get_parsec(KERNEL).build(units=units, nthreads=4)


def _scheduler():
    return RandomScheduler(seed=SEED, switch_prob=0.05)


def _stream_record(program, length: int, path: str, interval: int) -> Pinball:
    return record_region(program, _scheduler(), RegionSpec(length=length),
                         stream_path=path, pinball_format="v2",
                         checkpoint_interval=interval)


# -- record overhead ----------------------------------------------------------

def _bench_record_overhead(program, workdir: str) -> dict:
    """Streamed v2 record vs an untraced run of the identical schedule."""
    path = os.path.join(workdir, "overhead.pinball")
    _stream_record(program, LENGTH, path, RECORD_INTERVAL)   # warm / predecode
    steps = Pinball.load(path).total_steps

    untraced = recorded = float("inf")
    for _ in range(REPEATS):
        with _quiesced():
            machine = Machine(program, scheduler=_scheduler())
            started = time.perf_counter()
            machine.run(max_steps=steps)
            untraced = min(untraced, time.perf_counter() - started)
        with _quiesced():
            started = time.perf_counter()
            _stream_record(program, LENGTH, path, RECORD_INTERVAL)
            recorded = min(recorded, time.perf_counter() - started)

    return {
        "steps": steps,
        "checkpoint_interval": RECORD_INTERVAL,
        "untraced_sec": untraced,
        "streamed_record_sec": recorded,
        "overhead_x": recorded / untraced,
        "pinball_bytes": os.path.getsize(path),
    }


# -- flat record memory -------------------------------------------------------

def _bench_record_memory(program, workdir: str) -> dict:
    """Peak heap allocation of a streamed record at L and 4L."""
    peaks: Dict[int, int] = {}
    for length in (LENGTH, LENGTH_LONG):
        path = os.path.join(workdir, "rss-%d.pinball" % length)
        _pinball, peak = measure_peak_alloc(
            _stream_record, program, length, path, REWIND_INTERVAL)
        peaks[length] = peak
    return {
        "length_short": LENGTH,
        "length_long": LENGTH_LONG,
        "checkpoint_interval": REWIND_INTERVAL,
        "peak_alloc_short_bytes": peaks[LENGTH],
        "peak_alloc_long_bytes": peaks[LENGTH_LONG],
        "growth_x": peaks[LENGTH_LONG] / peaks[LENGTH],
    }


# -- O(chunk) rewind ----------------------------------------------------------

def _bench_rewind(program, workdir: str) -> dict:
    """Fresh-session late-region seek cost at L and 4L.

    The target sits a fixed distance past the last interior checkpoint
    at *both* lengths, so the replayed suffix is identical work and the
    measured difference is purely what scales with the region: open,
    checkpoint lookup, schedule positioning.
    """
    blobs: Dict[int, bytes] = {}
    for length in (LENGTH, LENGTH_LONG):
        path = os.path.join(workdir, "rewind-%d.pinball" % length)
        _stream_record(program, length, path, REWIND_INTERVAL)
        with open(path, "rb") as handle:
            blobs[length] = handle.read()

    times: Dict[int, float] = {}
    totals: Dict[int, int] = {}
    suffix = REWIND_INTERVAL // 2
    for length, blob in blobs.items():
        best = float("inf")
        for _ in range(max(REPEATS, 7 if not SMOKE else 1)):
            pinball = Pinball.from_bytes(blob)      # fresh lazy open
            totals[length] = pinball.total_steps
            target = ((pinball.total_steps // REWIND_INTERVAL - 1)
                      * REWIND_INTERVAL + suffix)
            with _quiesced():
                session = DrDebugSession(pinball, program)
                session.enable_reverse_debugging(
                    interval=REWIND_INTERVAL)
                started = time.perf_counter()
                session.seek(target)
                best = min(best, time.perf_counter() - started)
            assert session.steps_done == target
        times[length] = best

    ratio = (max(times.values()) / min(times.values())
             if min(times.values()) else 0.0)
    return {
        "length_short": LENGTH,
        "length_long": LENGTH_LONG,
        "total_steps_short": totals[LENGTH],
        "total_steps_long": totals[LENGTH_LONG],
        "checkpoint_interval": REWIND_INTERVAL,
        "seek_short_sec": times[LENGTH],
        "seek_long_sec": times[LENGTH_LONG],
        "ratio_x": ratio,
    }


def test_perf_pinball():
    program = _program()
    with tempfile.TemporaryDirectory(prefix="bench-pinball-") as workdir:
        overhead = _bench_record_overhead(program, workdir)
        memory = _bench_record_memory(program, workdir)
        rewind = _bench_rewind(program, workdir)

    report = {
        "schema_version": 2,
        "smoke": SMOKE,
        "kernel": KERNEL,
        "record_overhead": overhead,
        "record_memory": memory,
        "rewind": rewind,
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print("\npinball v2: record overhead %.2fx (bar 1.5x)  "
          "peak-alloc growth %.2fx at 4x length (bar 2.0x)  "
          "rewind ratio %.2fx across 4x lengths (bar 1.2x)"
          % (overhead["overhead_x"], memory["growth_x"],
             rewind["ratio_x"]))
    print("wrote %s" % path)

    # The machinery must hold in every mode: embedded checkpoints made
    # the long-region seek replay at most ~interval steps, not O(region).
    assert rewind["total_steps_long"] >= 3 * rewind["total_steps_short"]

    if not SMOKE:
        assert overhead["overhead_x"] <= 1.5, (
            "streamed record overhead %.2fx above the 1.5x bar"
            % overhead["overhead_x"])
        assert memory["growth_x"] <= 2.0, (
            "streamed-record peak alloc grew %.2fx over a 4x longer "
            "region (bar 2.0x: flat in region length)"
            % memory["growth_x"])
        assert rewind["ratio_x"] <= 1.2, (
            "fresh-session rewind cost differs %.2fx between region "
            "lengths %d and %d (bar 1.2x: independent of length)"
            % (rewind["ratio_x"], LENGTH, LENGTH_LONG))
