"""Figure 13 — slice-size reduction from removing spurious dependences.

The paper measures the average reduction in dynamic slice sizes (10
slices per program) when save/restore pairs are pruned, on five SPECOMP
2001 programs, for regions of 1M and 10M instructions, with MaxSave=10:
9.49% average for 1M regions and 6.31% for 10M.

Scaled sweep: two region lengths with the same 10-slices-per-kernel
methodology on the five call-dense SPECOMP-like kernels.  The expected
shape: a consistently positive reduction, averaging in the single-digit
to tens of percent range.
"""

import pytest

from benchmarks.conftest import record_table
from benchmarks.harness import measure_pruning
from repro.workloads import SPECOMP_KERNELS

LENGTHS = (3_000, 12_000)

_ROWS = []
_EXPECTED = len(SPECOMP_KERNELS) * len(LENGTHS)


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("kernel", sorted(SPECOMP_KERNELS))
def test_fig13_pruning_reduction(benchmark, kernel, length):
    row = benchmark.pedantic(
        lambda: measure_pruning(kernel, length, slices=10, max_save=10),
        rounds=1, iterations=1)
    _ROWS.append(row)

    # Pruning must only ever shrink slices, and these call-dense kernels
    # must actually exhibit verified save/restore pairs.
    assert row["avg_pruned_size"] <= row["avg_unpruned_size"]
    assert row["verified_pairs"] > 0
    assert row["avg_reduction_pct"] >= 0

    if len(_ROWS) == _EXPECTED:
        rows = sorted(_ROWS, key=lambda r: (r["kernel"], r["length_main"]))
        by_length = {}
        for row_ in rows:
            by_length.setdefault(row_["length_main"], []).append(
                row_["avg_reduction_pct"])
        averages = {length_: round(sum(vals) / len(vals), 2)
                    for length_, vals in by_length.items()}
        record_table(
            "fig13",
            "Removal of spurious dependences: average %% reduction in "
            "slice sizes over 10 slices (SPECOMP-like kernels, MaxSave=10)",
            ["kernel", "length_main", "slices", "avg_unpruned_size",
             "avg_pruned_size", "avg_reduction_pct", "verified_pairs"],
            rows,
            notes=("Paper: 9.49%% average reduction for 1M regions, "
                   "6.31%% for 10M. Measured averages per length: %r — "
                   "positive reductions, same order of magnitude."
                   % averages))
        # Shape: overall average reduction is positive and non-trivial.
        overall = [r["avg_reduction_pct"] for r in rows]
        assert sum(overall) / len(overall) > 1.0
