"""Figure 12 — replay times for the pinballs of varying region sizes.

Companion to Figure 11: replaying the recorded pinballs takes the same
order of time as logging (the paper notes logging is somewhat more
expensive than replay, but both grow with region length).
"""

import pytest

from benchmarks.conftest import record_table
from benchmarks.harness import measure_parsec_region
from repro.workloads import PARSEC_KERNELS

LENGTHS = (2_000, 8_000, 32_000)

_ROWS = []
_EXPECTED = len(PARSEC_KERNELS) * len(LENGTHS)


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("kernel", sorted(PARSEC_KERNELS))
def test_fig12_replay_time(benchmark, kernel, length):
    # Record once (untimed here), then benchmark the replay.
    result = measure_parsec_region(kernel, length)
    pinball = result["_pinball"]
    program = result["_program"]

    from repro.pinplay import replay
    machine, _run = benchmark.pedantic(
        lambda: replay(pinball, program), rounds=1, iterations=1)

    row = {key: value for key, value in result.items()
           if not key.startswith("_")}
    _ROWS.append(row)

    if len(_ROWS) == _EXPECTED:
        rows = sorted(_ROWS, key=lambda r: (r["kernel"], r["length_main"]))
        record_table(
            "fig12",
            "Replay times (wall clock) for pinballs of regions of "
            "varying sizes, PARSEC-like kernels, 4 threads",
            ["kernel", "kind", "length_main", "total_instructions",
             "replay_time_sec", "logging_time_sec"],
            rows,
            notes=("Paper: replay grows with region length and is "
                   "cheaper than logging (logging carries the tracing "
                   "tool; replay only injects)."))
        # Shape assertions: replay grows with length per kernel, and on
        # aggregate logging costs at least as much as replay.
        by_kernel = {}
        total_log = total_replay = 0.0
        for row in rows:
            by_kernel.setdefault(row["kernel"], []).append(
                (row["length_main"], row["replay_time_sec"]))
            total_log += row["logging_time_sec"]
            total_replay += row["replay_time_sec"]
        for kernel_name, series in by_kernel.items():
            series.sort()
            assert series[-1][1] > series[0][1], (
                "replay time did not grow with region length for %s"
                % kernel_name)
        assert total_log > total_replay, (
            "logging should cost more than replay overall")
