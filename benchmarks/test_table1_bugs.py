"""Table 1 — the three data-race bugs: exposure and recording.

Table 1 in the paper is descriptive (which bugs were studied); the
operational content this benchmark regenerates is that each bug analog
*manifests as the described race* and that capturing the buggy execution
with the logger is cheap.  The timed operation is the log-the-failing-run
step of the workflow.
"""

import pytest

from benchmarks.conftest import record_table
from repro.pinplay import RegionSpec, record_region, replay
from repro.vm import RandomScheduler
from repro.workloads import BUG_WORKLOADS, get_bug

_ROWS = []


def _expose(name):
    workload = get_bug(name)
    program = workload.build(warmup=300)
    pinball, seed = workload.expose(program, seeds=range(64))
    assert pinball is not None
    return workload, program, pinball, seed


@pytest.mark.parametrize("name", sorted(BUG_WORKLOADS))
def test_bug_capture(benchmark, name):
    workload, program, probe, seed = _expose(name)
    scheduler_factory = lambda: RandomScheduler(
        seed=seed, switch_prob=workload.switch_prob)

    pinball = benchmark.pedantic(
        lambda: record_region(program, scheduler_factory(), RegionSpec()),
        rounds=3, iterations=1)
    assert pinball.meta["failure"]["code"] == workload.failure_code

    machine, result = replay(pinball, program)
    assert result.failure["code"] == workload.failure_code

    _ROWS.append({
        "program": name,
        "description": workload.description,
        "type": "Real (analog)",
        "bug": workload.bug_analog_of[:68] + "...",
        "exposing_seed": seed,
        "replayable": True,
    })
    if len(_ROWS) == len(BUG_WORKLOADS):
        record_table(
            "table1", "Data race bugs used in the experiments",
            ["program", "description", "type", "exposing_seed",
             "replayable"],
            sorted(_ROWS, key=lambda r: r["program"]),
            notes=("Bug shapes follow the paper's Table 1: pbzip2 "
                   "fifo->mut use-after-destroy, Aget bwritten race with "
                   "the signal handler, Mozilla hash-table destroy/sweep."))
