"""Engine benchmark — predecoded micro-op engine vs the seed interpreter.

Measures steps/sec for the four phases of the DrDebug workflow on
PARSEC-like, SPECOMP-like and pointer-chasing (struct/heap) workloads,
running *both* engines in the same
process so the comparison is apples-to-apples on the same machine state:

* **record** — ``record_region`` with the logger tool attached;
* **replay** — untraced pinball replay (no tools: the predecoded engine's
  fast path, the analog of Pin-only speed);
* **trace**  — replay with the slicing tracer attached (traced micro-op
  path feeding the columnar trace store);
* **slice**  — interactive slice queries over the collected trace
  (engine-independent; reported for pipeline totals).

It also times ``Pinball`` deserialization with the trusted constructor
path against the untrusted normalization path (the ``Pinball.load`` win).

The phase wall-times reported by :class:`SlicingSession`
(``trace_time``/``preprocess_time``) are the obs layer's span
measurements, and each workload row carries an ``obs`` block of
per-phase counters (instructions retired, access-order edges, syscalls
injected, memo hits, ...) harvested from the observability registry in a
separate *untimed* instrumented pass — so the timed sections stay
obs-disabled and the report still explains what each phase did.

Results are written to ``BENCH_engine.json`` at the repo root.  In full
mode the run *asserts* the acceptance bars:

* untraced replay ≥ 2.5× steps/sec over the legacy engine;
* end-to-end slicing pipeline (trace + preprocess + slice) ≥ 1.5×.

Set ``REPRO_PERF_SMOKE=1`` (CI) for a reduced-size run that checks the
machinery and writes the JSON but skips the ratio assertions — shared
runners are too noisy for hard perf bars.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_engine.py -q -s
"""

from __future__ import annotations

import gc
import json
import os
import time
from contextlib import contextmanager
from typing import Dict, List

from repro.obs import OBS
from repro.pinplay import (Pinball, RegionSpec, record_region, replay,
                           replay_machine)
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RandomScheduler
from repro.workloads import get_parsec, get_pointer, get_specomp

from repro.config import perf_smoke

SMOKE = perf_smoke()

#: (suite, kernel, build kwargs) — kept modest so the full benchmark stays
#: under a couple of minutes while still retiring ~10^5 instructions per
#: workload per engine.
if SMOKE:
    WORKLOADS = [
        ("parsec", "blackscholes", {"units": 40, "nthreads": 4}),
        ("pointers", "list_chase", {"units": 25, "nthreads": 4}),
    ]
    REPLAY_REPEATS = 1
    PIPELINE_REPEATS = 1
    LOAD_REPEATS = 5
else:
    WORKLOADS = [
        ("parsec", "blackscholes", {"units": 200, "nthreads": 4}),
        ("parsec", "fluidanimate", {"units": 120, "nthreads": 4}),
        ("specomp", "ammp", {"units": 120}),
        ("specomp", "mgrid", {"units": 80}),
        ("pointers", "list_chase", {"units": 120, "nthreads": 4}),
        ("pointers", "hashchain", {"units": 90, "nthreads": 4}),
    ]
    REPLAY_REPEATS = 3
    PIPELINE_REPEATS = 3
    LOAD_REPEATS = 25

ENGINES = ("legacy", "predecoded")
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_engine.json")


@contextmanager
def _quiesced():
    """Collect garbage, then keep the collector out of the timed section."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _build(suite: str, kernel: str, params: dict):
    if suite == "parsec":
        return get_parsec(kernel).build(**params)
    if suite == "pointers":
        return get_pointer(kernel).build(**params)
    return get_specomp(kernel).build(**params)


def _layer_counters() -> Dict[str, int]:
    """The instrumented layers' counters, dropped to the interesting set."""
    return {name: value for name, value in OBS.counters().items()
            if name.split(".", 1)[0] in ("vm", "pinplay", "slicing")}


def _harvest_obs(program, pinball, engine: str, options) -> Dict[str, dict]:
    """Per-phase obs counters from one *untimed* instrumented pass.

    Runs record / untraced replay / the slicing pipeline once each with
    the registry enabled, resetting between phases, so every BENCH row
    can report what its timed twin actually did.  (The registry is
    process-wide: this clears and repopulates it, which is fine for a
    benchmark process.)
    """
    phases: Dict[str, dict] = {}
    with OBS.scope(enabled=True):
        OBS.reset()
        record_region(program, RandomScheduler(seed=7), RegionSpec(),
                      engine=engine)
        phases["record"] = _layer_counters()
        OBS.reset()
        replay(pinball, program, engine=engine, verify=False)
        phases["replay"] = _layer_counters()
        OBS.reset()
        session = SlicingSession(pinball, program, engine=engine,
                                 options=options)
        for criterion in session.last_reads(10):
            session.slice_for(criterion)
        phases["pipeline"] = _layer_counters()
        OBS.reset()
    return phases


def _bench_workload(suite: str, kernel: str, params: dict) -> List[dict]:
    """Benchmark all four phases for one workload, both engines."""
    program = _build(suite, kernel, params)
    rows = []
    for engine in ENGINES:
        # -- record (logger tool attached) -------------------------------
        with _quiesced():
            started = time.perf_counter()
            pinball = record_region(program, RandomScheduler(seed=7),
                                    RegionSpec(), engine=engine)
            record_time = time.perf_counter() - started
        steps = pinball.total_steps

        # -- untraced replay (fast path) ---------------------------------
        # A first full replay verifies the final-state hash (correctness);
        # the timed runs rebuild the machine *outside* the timer and time
        # only the re-execution loop, so the steps/sec number measures the
        # interpreter, not snapshot deserialization (which is identical
        # for both engines).
        replay(pinball, program, engine=engine, verify=True)
        replay_time = float("inf")
        with _quiesced():
            for _ in range(REPLAY_REPEATS):
                machine = replay_machine(pinball, program, engine=engine)
                started = time.perf_counter()
                machine.run(max_steps=pinball.total_steps)
                replay_time = min(replay_time,
                                  time.perf_counter() - started)

        # -- traced replay + preprocess + slice (the slicing pipeline) ---
        # The legacy row runs the full seed configuration — seed
        # interpreter *and* seed record-per-row trace store — so the
        # pipeline ratio is "new hot path vs. seed baseline" measured in
        # the same process.  Each repeat builds a *fresh* session (cold
        # trace, cold caches); the fastest repeat is reported, which is
        # standard best-of-N noise suppression.
        options = SliceOptions(columnar=(engine == "predecoded"))
        best = None
        for _ in range(PIPELINE_REPEATS):
            with _quiesced():
                session = SlicingSession(pinball, program, engine=engine,
                                         options=options)
                started = time.perf_counter()
                for criterion in session.last_reads(10):
                    session.slice_for(criterion)
                slice_time = time.perf_counter() - started
            pipeline_time = (session.trace_time + session.preprocess_time
                             + slice_time)
            if best is None or pipeline_time < best[0]:
                best = (pipeline_time, session.trace_time,
                        session.preprocess_time, slice_time,
                        session.collector.store.total_records())
        (pipeline_time, trace_time, preprocess_time, slice_time,
         trace_records) = best

        obs_phases = _harvest_obs(program, pinball, engine, options)

        rows.append({
            "suite": suite,
            "kernel": kernel,
            "engine": engine,
            "steps": steps,
            "record_time_sec": record_time,
            "record_steps_per_sec": steps / record_time,
            "replay_time_sec": replay_time,
            "replay_steps_per_sec": steps / replay_time,
            "trace_time_sec": trace_time,
            "trace_steps_per_sec": steps / trace_time,
            "preprocess_time_sec": preprocess_time,
            "slice_time_sec": slice_time,
            "pipeline_time_sec": pipeline_time,
            "trace_records": trace_records,
            "obs": obs_phases,
        })
    return rows


def _bench_pinball_load() -> dict:
    """Time Pinball deserialization: trusted from_dict vs untrusted casts."""
    program = _build("parsec", "blackscholes",
                     {"units": 40 if SMOKE else 150, "nthreads": 4})
    pinball = record_region(program, RandomScheduler(seed=7), RegionSpec())
    blob = pinball.to_bytes()
    payload = json.loads(__import__("zlib").decompress(blob).decode("utf-8"))

    def _untrusted_once() -> Pinball:
        # What load() cost before the trusted path: from_dict's casts AND
        # the constructor's normalization pass over every element again.
        return Pinball(
            program_name=payload["program_name"],
            snapshot=payload["snapshot"],
            schedule=[(int(t), int(c)) for t, c in payload["schedule"]],
            syscalls={int(t): [(e[0], e[1]) for e in log]
                      for t, log in payload["syscalls"].items()},
            mem_order=[tuple(edge) for edge in payload["mem_order"]],
            exclusions=payload.get("exclusions", []),
            meta=payload.get("meta", {}),
            trusted=False,
        )

    blob_v2 = pinball.to_bytes(format="v2")

    trusted = untrusted = lazy_v2 = float("inf")
    for _ in range(LOAD_REPEATS):
        started = time.perf_counter()
        Pinball.from_bytes(blob)
        trusted = min(trusted, time.perf_counter() - started)
        started = time.perf_counter()
        decompressed = json.loads(
            __import__("zlib").decompress(blob).decode("utf-8"))
        del decompressed
        _untrusted_once()
        untrusted = min(untrusted, time.perf_counter() - started)
        # v2 open is a header-only frame scan: no decompression, no JSON
        # parse, no payload CRC work until a section is first touched.
        started = time.perf_counter()
        Pinball.from_bytes(blob_v2)
        lazy_v2 = min(lazy_v2, time.perf_counter() - started)
    sched = len(pinball.schedule)
    return {
        "schedule_entries": sched,
        "mem_order_edges": len(pinball.mem_order),
        "load_trusted_sec": trusted,
        "load_untrusted_sec": untrusted,
        "load_speedup": untrusted / trusted if trusted else 0.0,
        "load_v2_sec": lazy_v2,
        "load_v2_speedup": untrusted / lazy_v2 if lazy_v2 else 0.0,
    }


def _totals(rows: List[dict]) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for engine in ENGINES:
        mine = [r for r in rows if r["engine"] == engine]
        steps = sum(r["steps"] for r in mine)
        out[engine] = {
            "steps": steps,
            "record_steps_per_sec":
                steps / sum(r["record_time_sec"] for r in mine),
            "replay_steps_per_sec":
                steps / sum(r["replay_time_sec"] for r in mine),
            "trace_steps_per_sec":
                steps / sum(r["trace_time_sec"] for r in mine),
            "pipeline_time_sec": sum(r["pipeline_time_sec"] for r in mine),
        }
    return out


def test_perf_engine():
    rows: List[dict] = []
    for suite, kernel, params in WORKLOADS:
        rows.extend(_bench_workload(suite, kernel, params))
    totals = _totals(rows)
    load_stats = _bench_pinball_load()

    replay_speedup = (totals["predecoded"]["replay_steps_per_sec"]
                      / totals["legacy"]["replay_steps_per_sec"])
    record_speedup = (totals["predecoded"]["record_steps_per_sec"]
                      / totals["legacy"]["record_steps_per_sec"])
    trace_speedup = (totals["predecoded"]["trace_steps_per_sec"]
                     / totals["legacy"]["trace_steps_per_sec"])
    pipeline_speedup = (totals["legacy"]["pipeline_time_sec"]
                        / totals["predecoded"]["pipeline_time_sec"])

    report = {
        "schema_version": 2,      # 2: rows carry per-phase "obs" counters
        "smoke": SMOKE,
        "workloads": rows,
        "totals": totals,
        "speedups": {
            "replay_untraced": replay_speedup,
            "record": record_speedup,
            "trace": trace_speedup,
            "slicing_pipeline": pipeline_speedup,
        },
        "pinball_load": load_stats,
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print("\nengine speedups (predecoded vs legacy): "
          "replay %.2fx  record %.2fx  trace %.2fx  pipeline %.2fx  "
          "pinball-load %.2fx (v2 lazy open %.2fx)"
          % (replay_speedup, record_speedup, trace_speedup,
             pipeline_speedup, load_stats["load_speedup"],
             load_stats["load_v2_speedup"]))
    print("wrote %s" % path)

    # Both engines must agree on work done — a wildly different step count
    # would mean the comparison measured different executions.
    for suite, kernel, _params in WORKLOADS:
        mine = [r for r in rows if r["kernel"] == kernel]
        assert len({r["steps"] for r in mine}) == 1, (
            "engines disagree on steps for %s" % kernel)

    if not SMOKE:
        assert replay_speedup >= 2.5, (
            "untraced replay speedup %.2fx below the 2.5x bar"
            % replay_speedup)
        assert pipeline_speedup >= 1.5, (
            "slicing pipeline speedup %.2fx below the 1.5x bar"
            % pipeline_speedup)
