"""Pointer-band slice precision — engineered bars over heap objects.

Dynamic slicing's advantage over static slicing (the paper's motivation
for computing slices from the *executed* dependences) is sharpest on
pointer code: two heap objects of the same struct type are
indistinguishable statically — every ``->value`` store aliases every
``->value`` load — but the recorded execution knows the base addresses
and keeps them apart.  This suite asserts that precision as hard bars:

* **non-aliasing exclusion** — a criterion read of ``a->value`` slices
  to the ``a`` chain only; the same-field writes to distractor objects
  are excluded, and the slice's node count does not move when the
  number of distractor objects is tripled;
* **use-after-free attribution** — the poison-mode UAF analog's failure
  slice contains the racing ``delete`` site (the allocator's poison
  writes are attributed to the freeing instruction, so the stale read's
  memory dependence lands on it);
* **dangling-reuse attribution** — the reuse analog's failure slice
  contains the recycling thread's field overwrite of the reused block.

Node counts and line sets are recorded per case into
``BENCH_pointers.json`` at the repo root and the paper-style
``table_pointers`` experiment table.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import record_table
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RandomScheduler
from repro.workloads import get_pointer_bug

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_pointers.json")

_ROWS = []
_EXPECTED_ROWS = 3

#: Distractor template: %(distractors)s declares/updates extra heap
#: objects whose writes go through the same field offsets as the
#: criterion chain but through different base pointers.
_PRECISION_TEMPLATE = """\
struct Cell { int value; int pad; };

int main() {
    struct Cell* a;
%(decls)s
    int i; int va;
    a = new Cell;
    a->value = 1;
%(inits)s
    for (i = 0; i < %(iters)d; i = i + 1) {
        a->value = a->value + 2;
%(updates)s
    }
    va = a->value;
    print(va);
    return 0;
}
"""


#: Upper bound on distractor objects; every variant declares this many
#: locals so the stack frame (and therefore main's prologue) is
#: identical across variants and the node-count bar compares slices of
#: structurally identical programs.
_MAX_DISTRACTORS = 3


def _precision_source(distractors: int, iters: int = 12) -> str:
    assert distractors <= _MAX_DISTRACTORS
    names = ["b%d" % i for i in range(distractors)]
    return _PRECISION_TEMPLATE % {
        "iters": iters,
        "decls": "\n".join("    struct Cell* b%d;" % i
                           for i in range(_MAX_DISTRACTORS)),
        "inits": "\n".join("    %s = new Cell;\n    %s->value = 100;"
                           % (n, n) for n in names),
        "updates": "\n".join("        %s->value = %s->value + 3;"
                             % (n, n) for n in names),
    }


def _session_for(source, name, heap_poison=False, seed=7, switch_prob=0.25):
    program = compile_source(source, name=name)
    pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=switch_prob),
        RegionSpec(), heap_poison=heap_poison)
    session = SlicingSession(pinball, program, SliceOptions(index="ddg"),
                             engine="predecoded")
    return program, pinball, session


def _slice_lines(dslice):
    return {node.line for node in dslice.nodes.values()
            if node.line is not None}


def _line_of(source, snippet):
    for lineno, text in enumerate(source.splitlines(), 1):
        if snippet in text:
            return lineno
    raise AssertionError("snippet %r not in source" % snippet)


def _finish_rows():
    if len(_ROWS) != _EXPECTED_ROWS:
        return
    record_table(
        "table_pointers", "Pointer-band slice precision bars",
        ["case", "criterion", "slice_nodes", "bar"],
        sorted(_ROWS, key=lambda r: r["case"]),
        notes=("Dynamic slices keep same-typed heap objects apart by "
               "base address; free()'s poison writes attribute "
               "use-after-free reads to the racing delete site."))
    report = {
        "schema_version": 1,
        "cases": {row["case"]: row for row in _ROWS},
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print("\nwrote %s" % path)


def test_nonaliasing_writes_excluded():
    """Same-field stores through other base pointers stay out of the
    slice, and distractor traffic does not grow it."""
    counts = {}
    for distractors in (1, 3):
        source = _precision_source(distractors)
        _program, _pinball, session = _session_for(
            source, "precision-%d" % distractors)
        criterion = session.last_instance_at_line(
            _line_of(source, "va = a->value"))
        dslice = session.slice_for(criterion)
        lines = _slice_lines(dslice)

        # The aliasing chain is in the slice...
        assert _line_of(source, "a->value = a->value + 2") in lines
        assert _line_of(source, "a = new Cell") in lines
        # ...every distractor write is excluded, base-address precision.
        for b_index in range(distractors):
            name = "b%d" % b_index
            assert _line_of(source, "%s->value = %s->value + 3"
                            % (name, name)) not in lines
            assert _line_of(source, "%s->value = 100" % name) not in lines
        counts[distractors] = len(dslice.nodes)

    # The precision bar: tripling the non-aliasing traffic must not
    # move the slice's node count at all.
    assert counts[1] == counts[3], (
        "slice grew with non-aliasing traffic: %r" % counts)

    _ROWS.append({
        "case": "nonaliasing_exclusion",
        "criterion": "last read of a->value",
        "slice_nodes": counts[1],
        "bar": "node count invariant under 3x distractor objects",
    })
    _finish_rows()


def test_uaf_slice_contains_delete_site():
    """The use-after-free failure slices back to the racing delete."""
    workload = get_pointer_bug("uaf_chase")
    source = workload.source()
    program = workload.build()
    pinball, seed = workload.expose(program, seeds=range(64))
    assert pinball is not None, "uaf_chase did not expose"
    session = SlicingSession(pinball, program, SliceOptions(index="ddg"),
                             engine="predecoded")
    dslice = session.slice_for(session.failure_criterion())
    lines = _slice_lines(dslice)

    delete_line = _line_of(source, "delete n;")
    assert delete_line in lines, (
        "UAF slice is missing the racing delete site (line %d); slice "
        "lines: %s" % (delete_line, sorted(lines)))
    # The symptom chain is also present: the poisoned field load.
    assert _line_of(source, "v = n->value") in lines

    _ROWS.append({
        "case": "uaf_delete_attribution",
        "criterion": "failure assert (code 104)",
        "slice_nodes": len(dslice.nodes),
        "bar": "slice contains the racing delete site",
    })
    _finish_rows()


def test_dangle_slice_contains_recycling_write():
    """The dangling-read failure slices back to the overwrite of the
    recycled block."""
    workload = get_pointer_bug("dangle_reuse")
    source = workload.source()
    program = workload.build()
    pinball, seed = workload.expose(program, seeds=range(64))
    assert pinball is not None, "dangle_reuse did not expose"
    session = SlicingSession(pinball, program, SliceOptions(index="ddg"),
                             engine="predecoded")
    dslice = session.slice_for(session.failure_criterion())
    lines = _slice_lines(dslice)

    overwrite_line = _line_of(source, "fresh->tag = 9")
    assert overwrite_line in lines, (
        "dangling-reuse slice is missing the recycling write (line %d); "
        "slice lines: %s" % (overwrite_line, sorted(lines)))
    assert _line_of(source, "t = q->tag") in lines

    _ROWS.append({
        "case": "dangle_reuse_attribution",
        "criterion": "failure assert (code 105)",
        "slice_nodes": len(dslice.nodes),
        "bar": "slice contains the reused block's overwrite",
    })
    _finish_rows()
