"""Table 3 — time and space overhead with the *whole-program* region.

The "novice programmer" configuration: capture from program start to the
failure point.  A long warm-up phase stands in for all the irrelevant
startup execution the paper's whole-program captures contained (pbzip2's
was 30M instructions vs 11k for the focused region).
"""

import pytest

from benchmarks.conftest import record_table
from benchmarks.harness import measure_bug
from repro.workloads import BUG_WORKLOADS

_ROWS = []

#: Long warm-up so whole-program regions dwarf the buggy regions, like
#: the paper's 30M (whole) vs 11k (region) for pbzip2.
WARMUP = 6000


@pytest.mark.parametrize("name", sorted(BUG_WORKLOADS))
def test_table3_whole_program(benchmark, name):
    row = benchmark.pedantic(
        lambda: measure_bug(name, whole_program=True, warmup=WARMUP)[0],
        rounds=1, iterations=1)
    _ROWS.append(row)
    assert 0 < row["slice_pinball_instructions"] < row["executed_instructions"]
    # Whole-program slices keep a *smaller fraction* than buggy-region
    # slices tend to: most of the execution is irrelevant warm-up.
    assert row["slice_pinball_pct"] < 60

    if len(_ROWS) == len(BUG_WORKLOADS):
        record_table(
            "table3",
            "Time and space overhead for data race bugs with whole "
            "program execution region",
            ["program", "executed_instructions",
             "slice_pinball_instructions", "slice_pinball_pct",
             "logging_time_sec", "space_bytes", "replay_time_sec",
             "slicing_time_sec"],
            sorted(_ROWS, key=lambda r: r["program"]),
            notes=("Paper: whole-program regions 0.76M-30M instructions "
                   "with slice pinballs 0.04%-10.5%; logging 10.5-21s, "
                   "replay 8.2-19.6s, slicing 1.6-3200s. Shape preserved: "
                   "whole >> buggy region, slice fraction smaller, "
                   "slicing dominates at scale."))
