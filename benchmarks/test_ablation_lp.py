"""Ablation — the Limited Preprocessing (LP) block-skipping optimization.

DESIGN.md calls out LP as a design choice worth ablating: the slicer
consults per-block def-set summaries and skips blocks that cannot define
any wanted location (Zhang et al.'s algorithm, adopted by the paper).
The ablation compares slicing with realistic block sizes against the
degenerate configuration (one giant block = no skipping possible) on a
workload with a long irrelevant middle — the case LP exists for.
"""

import pytest

from benchmarks.conftest import record_table
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RoundRobinScheduler

#: Long irrelevant middle between the criterion's producer and consumer.
SOURCE = """
int early; int junk1; int junk2; int result;
int main() {
    int i;
    early = 7;
    for (i = 0; i < 3000; i = i + 1) {
        junk1 = junk1 + i;
        junk2 = junk2 ^ (i * 3);
    }
    result = early + 1;
    return 0;
}
"""

BLOCK_SIZES = (64, 1024, 1 << 30)   # 1<<30: a single block, LP disabled

_ROWS = []


@pytest.fixture(scope="module")
def traced():
    program = compile_source(SOURCE, name="lp-ablation")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    return program, pinball


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_lp_block_size(benchmark, traced, block_size):
    program, pinball = traced
    session = SlicingSession(
        pinball, program,
        SliceOptions(block_size=block_size, index="columnar"))
    criterion = session.last_write_to_global("result")

    dslice = benchmark.pedantic(
        lambda: session.slice_for(criterion), rounds=5, iterations=1)

    _ROWS.append({
        "block_size": block_size if block_size < (1 << 30) else "no-LP",
        "slice_size": len(dslice),
        "scanned_records": dslice.stats["scanned_records"],
        "skipped_blocks": dslice.stats["skipped_blocks"],
        "visited_blocks": dslice.stats["visited_blocks"],
    })

    if len(_ROWS) == len(BLOCK_SIZES):
        record_table(
            "ablation_lp",
            "LP trace-block skipping ablation (criterion separated from "
            "its producer by ~40k irrelevant instructions)",
            ["block_size", "slice_size", "scanned_records",
             "skipped_blocks", "visited_blocks"],
            _ROWS,
            notes=("Same slice at every block size (LP is a pure "
                   "performance optimization); scanned-record counts show "
                   "the skipped work."))
        sizes = {row["slice_size"] for row in _ROWS}
        assert len(sizes) == 1, "LP changed slice contents!"
        with_lp = next(r for r in _ROWS if r["block_size"] == 64)
        without = next(r for r in _ROWS if r["block_size"] == "no-LP")
        assert with_lp["scanned_records"] < without["scanned_records"] / 5, (
            "LP did not reduce scanned records substantially")
