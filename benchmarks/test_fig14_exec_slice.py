"""Figure 14 — execution slicing: slice-pinball replay vs full replay.

The paper replays 10 execution-slice pinballs per PARSEC program (regions
of 1M main-thread instructions) and reports: on average slices contain
41% of the region's dynamic instructions and replay 36% faster than the
full region pinball.

Scaled methodology: 5 slices per kernel over smaller regions; the shape
to reproduce is (a) slice pinballs contain a strict fraction of the
region's instructions and (b) their replay is faster than full replay on
average.
"""

import pytest

from benchmarks.conftest import record_table
from benchmarks.harness import measure_exec_slice
from repro.workloads import PARSEC_KERNELS

LENGTH = 6_000

_ROWS = []


@pytest.mark.parametrize("kernel", sorted(PARSEC_KERNELS))
def test_fig14_execution_slicing(benchmark, kernel):
    row = benchmark.pedantic(
        lambda: measure_exec_slice(kernel, LENGTH, slices=5),
        rounds=1, iterations=1)
    _ROWS.append(row)

    assert 0 < row["avg_slice_instr_pct"] < 100

    if len(_ROWS) == len(PARSEC_KERNELS):
        rows = sorted(_ROWS, key=lambda r: r["kernel"])
        avg_pct = sum(r["avg_slice_instr_pct"] for r in rows) / len(rows)
        avg_speedup = sum(r["speedup_pct"] for r in rows) / len(rows)
        record_table(
            "fig14",
            "Execution slicing: average replay times for slice pinballs "
            "vs full region pinball (PARSEC-like kernels)",
            ["kernel", "length_main", "region_instructions",
             "full_replay_sec", "avg_slice_replay_sec",
             "avg_slice_instr_pct", "speedup_pct"],
            rows,
            notes=("Paper: slices average 41%% of region instructions and "
                   "replay 36%% faster. Measured: avg %.1f%% of "
                   "instructions, avg %.1f%% faster replay."
                   % (avg_pct, avg_speedup)))
        # Shape: slice replay is faster than full replay on average.
        assert avg_speedup > 0
        assert avg_pct < 100
