"""Region-sharded slicing-session build — parallel trace vs serial.

The tentpole claim of :mod:`repro.slicing.shard` is twofold and this
benchmark measures both halves over one recorded PARSEC region:

* **Correctness (asserted in every mode)** — the sharded build produces
  the *same* session as the serial pipeline: same trace record count,
  same verified save/restore pairs, same slice for the same criterion.
  The deep byte-level equivalence lives in
  ``tests/slicing/test_shard_differential.py``; the benchmark re-checks
  the observable fingerprint on a workload-sized region.
* **Speed (asserted only where it can exist)** — with ``shards=K`` the
  traced replay (the expensive phase) runs in ``K`` worker processes
  over region windows while the parent scouts boundaries and absorbs
  finished columnar shards.  The *trace* phase is the parallel part;
  the DDG build stays a serial (fragmented) parent-side pass, so the
  combined trace+DDG speedup is Amdahl-bounded.  Bars: trace-phase
  speedup at 4 shards >= 1.5x on >= 4 CPUs and >= 2x on >= 8 CPUs
  (4 workers + scout + absorber stop contending); smoke mode and
  1-CPU runners print the measured ratios without asserting.

Each sharded row carries an ``obs`` block harvested from an *untimed*
instrumented re-run (scout/window/stitch spans, seam counters), so the
timed sections stay obs-free.  Results go to ``BENCH_shards.json`` at
the repo root.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_shards.py -q -s
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.config import perf_smoke
from repro.obs.registry import OBS
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RandomScheduler
from repro.workloads import get_parsec

from benchmarks.harness import available_cpus, check_parallel_bar, timed

SMOKE = perf_smoke()
CPUS = available_cpus()

KERNEL = "blackscholes"
if SMOKE:
    PARAMS = {"units": 40, "nthreads": 2}
else:
    PARAMS = {"units": 1500, "nthreads": 4}

SHARD_COUNTS = (1, 2, 4)
BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_shards.json")


def _record_workload():
    program = get_parsec(KERNEL).build(**PARAMS)
    pinball = record_region(
        program, RandomScheduler(seed=5, switch_prob=0.05), RegionSpec())
    return program, pinball


def _fingerprint(session, dslice) -> dict:
    """The observable session identity the sharded build must preserve."""
    return {
        "trace_records": session.collector.store.total_records(),
        "verified_pairs": session.collector.save_restore.pair_count,
        "cfg_refinements": session.collector.registry.refinements,
        "slice_nodes": len(dslice.nodes),
        "slice_node_set": sorted(dslice.nodes),
    }


def _measure(program, pinball, shards: int) -> dict:
    gc.collect()
    started = time.perf_counter()
    session = SlicingSession(pinball, program, SliceOptions(shards=shards))
    build_wall = time.perf_counter() - started
    criterion = session.last_reads(1)[0]
    dslice, first_slice_time = timed(session.slice_for, criterion)

    row = {
        "phase": "session_build",
        "shards": shards,
        "build_wall_sec": build_wall,
        "trace_time_sec": session.trace_time,
        "preprocess_time_sec": session.preprocess_time,
        "ddg_first_slice_sec": first_slice_time,
        "trace_ddg_sec": session.trace_time + first_slice_time,
        "fingerprint": _fingerprint(session, dslice),
    }
    if session.shard_plan is not None:
        plan = session.shard_plan.to_dict()
        plan.pop("boundaries", None)    # bulky, derivable from windows
        row["shard_plan"] = plan
        # Untimed instrumented re-run for the obs block (scout/stitch
        # spans, per-seam carry counters, worker window spans).
        with OBS.scope(enabled=True):
            SlicingSession(pinball, program, SliceOptions(shards=shards))
            snapshot = OBS.snapshot()
        row["obs"] = {
            "counters": {name: value
                         for name, value in snapshot["counters"].items()
                         if "shard" in name},
            "spans": {name: round(span["total_sec"], 4)
                      for name, span in snapshot.get("spans", {}).items()
                      if "shard" in name},
        }
    return row


def test_perf_shards():
    program, pinball = _record_workload()
    rows = [_measure(program, pinball, shards) for shards in SHARD_COUNTS]
    by_shards = {row["shards"]: row for row in rows}

    # Correctness fingerprint: asserted in every mode, on every machine.
    serial = by_shards[1]
    for shards in SHARD_COUNTS[1:]:
        row = by_shards[shards]
        assert row["shard_plan"]["fallback"] is None, row["shard_plan"]
        assert row["fingerprint"] == serial["fingerprint"], (
            "sharded build diverged at shards=%d" % shards)

    speedups = {}
    for shards in SHARD_COUNTS[1:]:
        row = by_shards[shards]
        speedups["trace_%d_shards" % shards] = (
            serial["trace_time_sec"] / row["trace_time_sec"])
        speedups["trace_ddg_%d_shards" % shards] = (
            serial["trace_ddg_sec"] / row["trace_ddg_sec"])

    report = {
        "schema_version": 1,
        "smoke": SMOKE,
        "cpus": CPUS,
        "kernel": KERNEL,
        "params": PARAMS,
        "region_steps": pinball.total_steps,
        "phases": rows,
        "speedups": speedups,
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print("\nshard speedups over serial (mode=%s): "
          "trace %.2fx / %.2fx at 2/4 shards, trace+DDG %.2fx at 4"
          % (by_shards[4]["shard_plan"]["mode"],
             speedups["trace_2_shards"], speedups["trace_4_shards"],
             speedups["trace_ddg_4_shards"]))
    print("wrote %s" % path)

    check_parallel_bar("sharded trace build (4 shards)",
                       speedups["trace_4_shards"], 1.5,
                       cpus_required=4, smoke=SMOKE, cpus=CPUS)
    check_parallel_bar("sharded trace build (4 shards)",
                       speedups["trace_4_shards"], 2.0,
                       cpus_required=8, smoke=SMOKE, cpus=CPUS)
    check_parallel_bar("sharded trace+DDG build (4 shards)",
                       speedups["trace_ddg_4_shards"], 1.2,
                       cpus_required=8, smoke=SMOKE, cpus=CPUS)
