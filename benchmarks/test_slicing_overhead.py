"""Section 7, "Slicing overhead and precision" — trace and slice costs.

The paper: for 1M-instruction region pinballs over 8 PARSEC programs,
average dynamic-information tracing time 51s; slices for the last 10 read
instructions averaged 218k instructions and 585s to compute; the trace is
collected once and reused across slicing sessions.

Scaled: the same methodology (last-10-reads criteria) on smaller regions.
The shape to reproduce: trace collection dominates one-off cost, repeated
slice queries amortize it, and slices are a fraction of the region.
"""

import pytest

from benchmarks.conftest import record_table
from benchmarks.harness import measure_slicing_overhead
from repro.workloads import PARSEC_KERNELS

LENGTH = 5_000

_ROWS = []


@pytest.mark.parametrize("kernel", sorted(PARSEC_KERNELS))
def test_slicing_overhead(benchmark, kernel):
    row = benchmark.pedantic(
        lambda: measure_slicing_overhead(kernel, LENGTH, slices=10),
        rounds=1, iterations=1)
    _ROWS.append(row)

    # Every slice must be a strict subset of the region.
    assert row["avg_slice_size"] < row["region_instructions"]

    if len(_ROWS) == len(PARSEC_KERNELS):
        rows = sorted(_ROWS, key=lambda r: r["kernel"])
        avg_trace = sum(r["trace_time_sec"] for r in rows) / len(rows)
        avg_slice_time = sum(r["avg_slice_time_sec"]
                             for r in rows) / len(rows)
        record_table(
            "slicing_overhead",
            "Slicing overhead: trace collection (once per session) and "
            "per-slice cost for the last 10 reads (PARSEC-like kernels)",
            ["kernel", "length_main", "region_instructions",
             "trace_time_sec", "preprocess_time_sec", "avg_slice_size",
             "avg_slice_time_sec"],
            rows,
            notes=("Paper: avg trace time 51s and avg slice time 585s "
                   "for 1M-instruction regions (slices avg 218k instrs). "
                   "Measured: avg trace %.2fs, avg slice %.4fs — the "
                   "once-per-session trace dominates repeated queries."
                   % (avg_trace, avg_slice_time)))
