"""Fleet load generation — latency/throughput under concurrent clients.

ISSUE 8's scale-out claim has three measurable parts, and this benchmark
drives all three into ``BENCH_loadgen.json``:

* **Warm vs cold session opens** — the persistent index cache turns a
  cold node's session open from O(trace + DDG build) into O(load).
  Measured at the session-construction level (one
  ``SessionManager.open`` per fresh manager); full mode asserts the
  ≥ 5× bar.
* **Single-node saturation** — the closed-loop load generator
  (``repro client bench`` machinery) drives a zipf-popular request mix
  (slice / last_reads / replay, plus a record-bearing mix row) at
  several client counts against one server; each row carries p50/p99
  latency and throughput, and the saturation point is the best row.
* **Multi-node scale-out** — the same workload against a router over
  two serve nodes vs a single node.  Node builds are CPU-bound
  processes, so the speedup bar is gated on ≥ 4 usable CPUs via the
  shared :func:`~benchmarks.harness.check_parallel_bar` (printed, not
  asserted, on small boxes and in smoke mode).

Set ``REPRO_PERF_SMOKE=1`` (CI) for a reduced run that still writes the
JSON.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_loadgen.py -q -s
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from typing import List

from repro import config
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.serve import (DebugClient, DebugServer, PinballStore,
                         SessionManager, run_server)
from repro.serve.loadgen import run_bench
from repro.serve.router import Router, run_router
from repro.vm import RandomScheduler
from repro.workloads import get_parsec, get_specomp

from repro.config import perf_smoke

from benchmarks.harness import available_cpus, check_parallel_bar, timed

SMOKE = perf_smoke()
CPUS = available_cpus()

if SMOKE:
    RECORDINGS = 4
    OPS = 24
    CLIENT_COUNTS = (1, 4)
    WARM_COLD_REPS = 2
    KERNELS = [("parsec", "blackscholes", {"units": 20, "nthreads": 2})]
else:
    RECORDINGS = 8
    OPS = 96
    CLIENT_COUNTS = (1, 4, 8)
    WARM_COLD_REPS = 4
    KERNELS = [
        ("parsec", "blackscholes", {"units": 60, "nthreads": 3}),
        ("parsec", "fluidanimate", {"units": 40, "nthreads": 3}),
        ("specomp", "ammp", {"units": 40}),
        ("specomp", "mgrid", {"units": 30}),
    ]

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_loadgen.json")
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         os.pardir))
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: A small source for the record-bearing mix row (records server-side).
RECORD_SOURCE = get_parsec("blackscholes").source(units=8, nthreads=2)


def _kernel_source(index: int):
    suite, kernel, params = KERNELS[index % len(KERNELS)]
    workload = (get_parsec(kernel) if suite == "parsec"
                else get_specomp(kernel))
    sized = dict(params, units=params["units"] + 2 * (index // len(KERNELS)))
    return "%s-%d" % (kernel, index), workload.source(**sized)


def _build_corpus(root: str) -> List[tuple]:
    """RECORDINGS stored kernel recordings; returns their open keys."""
    store = PinballStore(root)
    keys = []
    for index in range(RECORDINGS):
        name, source = _kernel_source(index)
        program = compile_source(source, name=name)
        pinball = record_region(program, RandomScheduler(seed=index),
                                RegionSpec())
        source_sha = store.put_source(source, name, tags=("bench",))
        pinball_sha = store.put_pinball(
            pinball, tags=("bench",),
            meta={"source_sha": source_sha, "program_name": name})
        keys.append((pinball_sha, source_sha, name))
    return keys


# ---------------------------------------------------------------------------
# Phase 1: warm vs cold session opens (the persistent index cache).
# ---------------------------------------------------------------------------

def _bench_warm_cold(root: str, keys: List[tuple]) -> dict:
    store = PinballStore(root)
    sha, source_sha, name = keys[0]
    # Seed the cache once (untimed) so every warm rep below is a hit.
    SessionManager(store, max_entries=1).open(sha, source_sha, name)
    cold_times = []
    for _ in range(WARM_COLD_REPS):
        manager = SessionManager(store, max_entries=1, index_cache=False)
        _, elapsed = timed(manager.open, sha, source_sha, name)
        cold_times.append(elapsed)
    warm_times = []
    for _ in range(WARM_COLD_REPS):
        manager = SessionManager(store, max_entries=1)
        _, elapsed = timed(manager.open, sha, source_sha, name)
        warm_times.append(elapsed)
        assert manager.index_cache_hits == 1, "warm rep missed the cache"
    return {
        "phase": "warm_vs_cold_open",
        "recording": name,
        "reps": WARM_COLD_REPS,
        "cold_open_sec": min(cold_times),
        "warm_open_sec": min(warm_times),
        "speedup": min(cold_times) / min(warm_times),
    }


# ---------------------------------------------------------------------------
# Phase 2: single-node saturation sweep + mix rows.
# ---------------------------------------------------------------------------

@contextmanager
def _running_server(root: str, workers: int = 2):
    server = DebugServer(root, port=0, workers=workers,
                         request_timeout=600.0, queue_limit=256)
    ready = threading.Event()
    thread = threading.Thread(
        target=run_server, args=(server,),
        kwargs={"announce": lambda host, port: ready.set()}, daemon=True)
    thread.start()
    assert ready.wait(60), "server did not come up"
    try:
        yield server
    finally:
        try:
            with DebugClient(port=server.port, timeout=30) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(30)


def _warm_fleet(port: int, keys: List[tuple]) -> None:
    """Build every resident session once, outside the timed windows."""
    with DebugClient(port=port, timeout=600) as client:
        for sha, _source, _name in keys:
            client.call("build", {"key": sha})


def _bench_single_node(root: str, keys: List[tuple]) -> List[dict]:
    shas = [sha for sha, _s, _n in keys]
    rows = []
    with _running_server(root) as server:
        _warm_fleet(server.port, keys)
        for clients in CLIENT_COUNTS:
            report = run_bench("127.0.0.1", server.port, shas, ops=OPS,
                               clients=clients, seed=17)
            rows.append(dict(report, phase="single_node", nodes=1))
        # A record-bearing mix: writes land in the shared store too.
        report = run_bench(
            "127.0.0.1", server.port, shas, ops=max(8, OPS // 4),
            clients=max(CLIENT_COUNTS),
            mix={"slice": 6, "last_reads": 3, "replay": 1, "record": 1},
            seed=23, record_source=RECORD_SOURCE)
        rows.append(dict(report, phase="record_mix", nodes=1))
    return rows


# ---------------------------------------------------------------------------
# Phase 3: multi-node (router + N serve subprocesses) vs one node.
# ---------------------------------------------------------------------------

def _spawn_node(root: str, scratch: str, name: str):
    port_file = os.path.join(scratch, "%s.port" % name)
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", root,
         "--port", "0", "--workers", "2", "--port-file", port_file],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.time() + 120
    while time.time() < deadline:
        if os.path.exists(port_file):
            text = open(port_file).read().strip()
            if text:
                return proc, int(text)
        if proc.poll() is not None:
            raise AssertionError("node died at startup")
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("node never wrote its port file")


@contextmanager
def _routed_fleet(root: str, scratch: str, nodes: int):
    procs = []
    ports = []
    try:
        for index in range(nodes):
            proc, port = _spawn_node(root, scratch, "bench-node%d" % index)
            procs.append(proc)
            ports.append(port)
        router = Router([("127.0.0.1", port) for port in ports], port=0,
                        health_interval=5.0)
        ready = threading.Event()
        thread = threading.Thread(
            target=run_router, args=(router,),
            kwargs={"announce": lambda host, port: ready.set()},
            daemon=True)
        thread.start()
        assert ready.wait(30), "router did not come up"
        try:
            yield router
        finally:
            try:
                with DebugClient(port=router.port, timeout=30) as client:
                    client.shutdown()
            except (OSError, Exception):   # noqa: BLE001 — teardown
                pass
            thread.join(30)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


def _bench_multi_node(root: str, scratch: str,
                      keys: List[tuple]) -> List[dict]:
    shas = [sha for sha, _s, _n in keys]
    clients = max(CLIENT_COUNTS)
    rows = []
    for nodes in (1, 2):
        with _routed_fleet(root, scratch, nodes) as router:
            _warm_fleet(router.port, keys)
            report = run_bench("127.0.0.1", router.port, shas, ops=OPS,
                               clients=clients, seed=31)
            rows.append(dict(report, phase="multi_node", nodes=nodes,
                             router_counts=dict(router.counts)))
    return rows


# ---------------------------------------------------------------------------
# The benchmark.
# ---------------------------------------------------------------------------

def test_perf_loadgen(tmp_path):
    root = str(tmp_path / "store")
    scratch = str(tmp_path)
    keys = _build_corpus(root)

    warm_cold = _bench_warm_cold(root, keys)
    single = _bench_single_node(root, keys)
    multi = _bench_multi_node(root, scratch, keys)

    sweep = [row for row in single if row["phase"] == "single_node"]
    saturation = max(sweep, key=lambda row: row["throughput_ops_per_sec"])
    by_nodes = {row["nodes"]: row for row in multi}
    speedups = {
        "warm_vs_cold_open": warm_cold["speedup"],
        "two_nodes_vs_one": (
            by_nodes[2]["throughput_ops_per_sec"]
            / by_nodes[1]["throughput_ops_per_sec"]),
    }
    report = {
        "schema_version": 1,
        "smoke": SMOKE,
        "cpus": CPUS,
        "recordings": RECORDINGS,
        "ops": OPS,
        "client_counts": list(CLIENT_COUNTS),
        "phases": [warm_cold] + single + multi,
        "saturation": {
            "throughput_ops_per_sec": saturation["throughput_ops_per_sec"],
            "at_clients": saturation["clients"],
            "p50_ms": saturation["latency_ms"]["p50"],
            "p99_ms": saturation["latency_ms"]["p99"],
        },
        "speedups": speedups,
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print("\nloadgen: warm-vs-cold open %.1fx; saturation %.1f ops/s at "
          "%d clients (p50 %.1f ms, p99 %.1f ms); 2-node vs 1-node %.2fx"
          % (speedups["warm_vs_cold_open"],
             report["saturation"]["throughput_ops_per_sec"],
             report["saturation"]["at_clients"],
             report["saturation"]["p50_ms"],
             report["saturation"]["p99_ms"],
             speedups["two_nodes_vs_one"]))
    print("wrote %s" % path)

    # Every row completed its ops without protocol-level failures.
    for row in single + multi:
        assert row["error_responses"] == 0, row
        assert row["completed"] >= row["ops"] * 0.95, row

    # The index-cache bar is engine-specific; riders pin other engines.
    if not SMOKE and config.slice_index() == "ddg":
        assert speedups["warm_vs_cold_open"] >= 5.0, (
            "warm session open only %.2fx over cold build (bar: 5x)"
            % speedups["warm_vs_cold_open"])
    # Node builds are CPU-bound: the scale-out bar needs cores to
    # scale onto — printed, not asserted, below 4 CPUs / in smoke.
    check_parallel_bar("loadgen 2-node vs 1-node throughput",
                       speedups["two_nodes_vs_one"], 1.5,
                       cpus_required=4, smoke=SMOKE, cpus=CPUS)
