"""Bug-firehose performance: online detection tax and fleet rate.

Two numbers gate the hunt pipeline (ISSUE 10 acceptance):

* **online detection** must cost at most ``ONLINE_BAR`` (1.5x) of a bare
  untraced replay of the same pinball — the whole point of the
  recorder-protocol detector is that scanning for races is cheap enough
  to leave on;
* **the hunt fleet** must evaluate at least ``RATE_BAR`` (5) candidate
  schedules per second per worker — re-executions within the recorded
  envelope are supposed to be cheap in-situ probes, not fresh
  recordings.

Results (plus the raw timings) land in ``BENCH_hunt.json`` at the repo
root and in ``benchmarks/results/experiments.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_hunt.py -q -s
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.config import perf_smoke
from repro.detect import detect_races_online
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.pinplay.replayer import replay_machine
from repro.vm import RandomScheduler
from repro.workloads import get_parsec

from benchmarks.conftest import record_table

SMOKE = perf_smoke()

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_hunt.json")

#: Allowed slowdown of one online-detection pass over a bare untraced
#: replay of the same pinball.
ONLINE_BAR = 1.5

#: Minimum candidate-schedule re-executions per second per worker.
RATE_BAR = 5.0

if SMOKE:
    UNITS, REPEATS = 60, 3
else:
    UNITS, REPEATS = 120, 5

#: The fleet workload: a lost-update race — candidates come from real
#: detected races, like a production hunt.
RACY_SOURCE = """
int x;
int bump(int unused) {
    x = x + 1;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 0);
    b = spawn(bump, 0);
    join(a);
    join(b);
    return x;
}
"""


def _best(fn, repeats):
    best = float("inf")
    gc.collect()
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_online_detection():
    program = get_parsec("blackscholes").build(units=UNITS, nthreads=4)
    pinball = record_region(program,
                            RandomScheduler(seed=3, switch_prob=0.1),
                            RegionSpec(), rand_seed=3)

    def untraced():
        machine = replay_machine(pinball, program)
        machine.run(max_steps=pinball.total_steps)

    def online():
        detect_races_online(pinball, program)

    untraced()   # warm both paths before timing
    online()
    baseline = _best(untraced, REPEATS)
    candidate = _best(online, REPEATS)
    return {
        "phase": "online_detection",
        "workload": "blackscholes",
        "steps": pinball.total_steps,
        "untraced_sec": baseline,
        "online_sec": candidate,
        "ratio": candidate / baseline,
        "bar": ONLINE_BAR,
    }


def _bench_fleet_rate():
    from repro.analysis.hunt import evaluate, scan

    program = compile_source(RACY_SOURCE, name="bench_hunt")
    pinball = record_region(program,
                            RandomScheduler(seed=1, switch_prob=0.3),
                            RegionSpec(), rand_seed=1)
    _races, candidates, ctx = scan(pinball, program, budget=8,
                                   profile_seeds=2)
    evaluate(program, candidates, ctx)   # warm

    def fleet():
        evaluate(program, candidates, ctx)

    elapsed = _best(fleet, REPEATS)
    return {
        "phase": "fleet_rate",
        "workload": "bench_hunt",
        "candidates": len(candidates),
        "wall_time_sec": elapsed,
        "candidates_per_sec_per_worker": len(candidates) / elapsed,
        "bar": RATE_BAR,
    }


def test_perf_hunt():
    online = _bench_online_detection()
    fleet = _bench_fleet_rate()

    report = {
        "schema_version": 1,
        "smoke": SMOKE,
        "units": UNITS,
        "phases": [online, fleet],
        "bars": {"online_ratio_max": ONLINE_BAR,
                 "candidates_per_sec_per_worker_min": RATE_BAR},
    }
    path = os.path.abspath(BENCH_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    record_table(
        "hunt",
        "Bug firehose: online detection tax + fleet rate",
        ["phase", "workload", "untraced_sec", "online_sec", "ratio",
         "candidates", "candidates_per_sec_per_worker", "bar"],
        [online, fleet],
        notes="online pass over %d steps; fleet evaluates %d candidate "
              "schedules in-process (one worker)"
              % (online["steps"], fleet["candidates"]))

    print("\nonline detection %.4fs vs untraced %.4fs — %.3fx (bar %.1fx)"
          % (online["online_sec"], online["untraced_sec"],
             online["ratio"], ONLINE_BAR))
    print("hunt fleet %.1f candidate schedules/sec/worker (bar %.1f)"
          % (fleet["candidates_per_sec_per_worker"], RATE_BAR))
    print("wrote %s" % path)

    assert online["ratio"] <= ONLINE_BAR, (
        "online race detection is %.3fx untraced replay (bar %.2fx)"
        % (online["ratio"], ONLINE_BAR))
    assert fleet["candidates_per_sec_per_worker"] >= RATE_BAR, (
        "hunt fleet evaluates %.1f candidate schedules/sec/worker "
        "(bar %.1f)"
        % (fleet["candidates_per_sec_per_worker"], RATE_BAR))
