"""Tests for the debugger session: cyclic replay debugging semantics."""

import pytest

from repro.debugger import DrDebugSession
from repro.debugger.session import DebuggerError
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.vm import RoundRobinScheduler

from tests.conftest import FIG5_SOURCE

SEQUENTIAL = """
int g; int h;
int helper(int v) {
    int doubled;
    doubled = v * 2;
    return doubled;
}
int main() {
    int x;
    x = 5;
    g = helper(x);
    h = g + 1;
    return 0;
}
"""


@pytest.fixture
def seq_session():
    program = compile_source(SEQUENTIAL, name="seq")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    return DrDebugSession(pinball, program, source=SEQUENTIAL)


class TestBreakpointsAndRun:
    def test_run_to_breakpoint(self, seq_session):
        seq_session.breakpoints.add(line=11)      # g = helper(x)
        message = seq_session.run()
        assert "hit breakpoint 1" in message
        assert seq_session.current_line() == 11

    def test_state_at_breakpoint(self, seq_session):
        seq_session.breakpoints.add(line=11)
        seq_session.run()
        assert seq_session.print_var("x") == 5
        assert seq_session.print_var("g") == 0    # not yet assigned

    def test_continue_to_end(self, seq_session):
        seq_session.breakpoints.add(line=11)
        seq_session.run()
        message = seq_session.continue_()
        assert "finished" in message
        assert seq_session.print_var("g") == 10
        assert seq_session.print_var("h") == 11

    def test_breakpoint_in_function(self, seq_session):
        seq_session.breakpoints.add(func="helper")
        seq_session.run()
        assert seq_session.where().startswith("thread 0 at helper")

    def test_breakpoint_hit_counts(self, seq_session):
        bp = seq_session.breakpoints.add(func="helper")
        seq_session.run()
        assert bp.hit_count == 1

    def test_disabled_breakpoint_skipped(self, seq_session):
        bp = seq_session.breakpoints.add(line=11)
        seq_session.breakpoints.enable(bp.number, False)
        message = seq_session.run()
        assert "finished" in message


class TestCyclicDebugging:
    def test_restart_reproduces_state_exactly(self, seq_session):
        seq_session.breakpoints.add(line=12)
        seq_session.run()
        first = (seq_session.print_var("g"), seq_session.print_var("x"))
        # Second debug iteration: identical state at the same point.
        seq_session.run()
        second = (seq_session.print_var("g"), seq_session.print_var("x"))
        assert first == second == (10, 5)

    def test_racy_state_reproduced_across_iterations(self, fig5):
        program, pinball, _seed = fig5
        values = []
        for _ in range(3):
            session = DrDebugSession(pinball, program)
            session.breakpoints.add(line=15)     # the assert line
            session.run()
            values.append(session.print_var("x"))
        assert values[0] == values[1] == values[2]


class TestStepping:
    def test_stepi_advances(self, seq_session):
        seq_session.restart()
        before = seq_session.steps_done
        seq_session.stepi(5)
        assert seq_session.steps_done == before + 5

    def test_step_advances_source_line(self, seq_session):
        seq_session.breakpoints.add(line=10)      # x = 5
        seq_session.run()
        start = seq_session.current_line()
        seq_session.step()
        assert seq_session.current_line() != start

    def test_stepi_at_end_is_safe(self, seq_session):
        seq_session.run()
        message = seq_session.stepi(10)
        assert "stepped 0" in message


class TestInspection:
    def test_info_threads(self, fig5):
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program)
        session.breakpoints.add(line=16)          # k = k + x in thread2
        session.run()
        lines = session.info_threads()
        assert len(lines) == 3

    def test_backtrace_inside_call(self, seq_session):
        seq_session.breakpoints.add(func="helper")
        seq_session.run()
        frames = seq_session.backtrace()
        assert frames[0].startswith("#0 helper")
        assert frames[1].startswith("#1 main")

    def test_locals_in_callee(self, seq_session):
        seq_session.breakpoints.add(line=5)       # doubled = v * 2
        seq_session.run()
        seq_session.step()
        assert seq_session.print_var("doubled") == 10
        assert seq_session.print_var("v") == 5

    def test_array_indexing(self):
        source = """
int arr[4] = {9, 8, 7, 6};
int main() { while (1) { yield(); } return 0; }
"""
        program = compile_source(source, name="arr")
        pinball = record_region(program, RoundRobinScheduler(),
                                RegionSpec(length=50))
        session = DrDebugSession(pinball, program)
        session.restart()
        session.stepi(5)
        assert session.print_var("arr[2]") == 7

    def test_unknown_variable_raises(self, seq_session):
        seq_session.restart()
        seq_session.stepi(2)
        with pytest.raises(DebuggerError):
            seq_session.print_var("nothere")

    def test_commands_require_running_machine(self, seq_session):
        with pytest.raises(DebuggerError):
            seq_session.print_var("g")


class TestSliceWorkflow:
    def test_slice_at_failure_and_pinball(self, fig5):
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program, source=FIG5_SOURCE)
        dslice = session.slice_at_failure()
        assert len(dslice) > 0
        slice_pb = session.make_slice_pinball()
        assert slice_pb.meta["kept_instructions"] < pinball.total_instructions

    def test_slice_pinball_requires_slice(self, seq_session):
        with pytest.raises(DebuggerError):
            seq_session.make_slice_pinball()

    def test_slice_replay_and_step(self, fig5):
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program, source=FIG5_SOURCE)
        session.slice_at_failure()
        child = session.replay_slice()
        stops = []
        for _ in range(100):
            message = child.slice_step()
            if "finished" in message:
                break
            stops.append((child.focus_tid, child.current_line()))
        assert stops, "never stopped at a slice statement"
        # Every stop is at a line belonging to the slice.
        slice_lines = session.current_slice.lines()
        assert all(line in slice_lines for _tid, line in stops)

    def test_slice_values_observable_while_stepping(self, fig5):
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program, source=FIG5_SOURCE)
        session.slice_at_failure()
        child = session.replay_slice()
        x_values = []
        for _ in range(100):
            message = child.slice_step()
            if "finished" in message:
                break
            x_values.append(child.print_var("x"))
        # x starts 0 and is raced to 2 by thread1 somewhere along the slice.
        assert 0 in x_values or 2 in x_values

    def test_slice_step_coalesces_lines(self, fig5):
        """By default consecutive stops on one (thread, line) merge into
        one statement-level stop (the paper's step-statement-to-statement
        semantics)."""
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program, source=FIG5_SOURCE)
        session.slice_at_failure()
        child = session.replay_slice()
        stops = []
        for _ in range(200):
            message = child.slice_step()
            if "finished" in message:
                break
            stops.append((child.focus_tid, child.current_line()))
        # No two consecutive stops share (thread, line).
        for previous, current in zip(stops, stops[1:]):
            assert previous != current

    def test_slice_step_per_instruction_mode(self, fig5):
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program, source=FIG5_SOURCE)
        session.slice_at_failure()
        coalesced_child = session.replay_slice()
        coalesced = sum(
            1 for _ in range(300)
            if "finished" not in coalesced_child.slice_step())
        fine_child = session.replay_slice()
        fine = sum(
            1 for _ in range(300)
            if "finished" not in fine_child.slice_step(by_statement=False))
        assert fine > coalesced

    def test_slice_for_variable_at_line(self, fig5):
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program)
        dslice = session.slice_for_variable("x", line=6)
        lines = {n.line for n in dslice.nodes.values()}
        assert 6 in lines
