"""Unit tests for the checkpoint manager itself."""

import pytest

from repro.debugger.checkpoints import CheckpointManager, remaining_schedule
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.pinplay.pinball import state_hash
from repro.pinplay.replayer import SyscallInjector
from repro.vm import RoundRobinScheduler
from repro.vm.machine import Machine, MachineSnapshot
from repro.vm.scheduler import RecordedScheduler

SOURCE = """
int g;
int main() {
    int i;
    for (i = 0; i < 40; i = i + 1) {
        g = g + rand(3);
    }
    print(g);
    return 0;
}
"""


@pytest.fixture
def recorded():
    program = compile_source(SOURCE, name="cp")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                            rand_seed=9)
    return program, pinball


def fresh_replay(pinball, program):
    scheduler = RecordedScheduler(pinball.schedule)
    injector = SyscallInjector(pinball.syscalls)
    machine = Machine.from_snapshot(
        program, MachineSnapshot.from_dict(pinball.snapshot),
        scheduler=scheduler, syscall_injector=injector.inject)
    return machine, injector


class TestCapture:
    def test_interval_validation(self, recorded):
        program, pinball = recorded
        with pytest.raises(ValueError):
            CheckpointManager(pinball, program, interval=0)

    def test_capture_is_idempotent_per_step(self, recorded):
        program, pinball = recorded
        manager = CheckpointManager(pinball, program, interval=10)
        machine, injector = fresh_replay(pinball, program)
        manager.capture(machine, injector, 0)
        manager.capture(machine, injector, 0)
        assert len(manager) == 1

    def test_due_follows_interval(self, recorded):
        program, pinball = recorded
        manager = CheckpointManager(pinball, program, interval=10)
        machine, injector = fresh_replay(pinball, program)
        assert manager.due(0)
        manager.capture(machine, injector, 0)
        assert not manager.due(5)
        assert manager.due(10)


class TestRestore:
    def test_restored_machine_continues_identically(self, recorded):
        program, pinball = recorded
        manager = CheckpointManager(pinball, program, interval=10)
        machine, injector = fresh_replay(pinball, program)
        machine.run(max_steps=60)
        manager.capture(machine, injector, 60)
        machine.run(max_steps=pinball.total_steps - 60)
        final_hash = state_hash(machine)
        final_output = list(machine.output)

        checkpoint = manager.latest_at_or_before(60)
        restored, _injector = manager.restore(checkpoint)
        restored.run(max_steps=pinball.total_steps - 60)
        assert state_hash(restored) == final_hash
        assert restored.output == final_output

    def test_latest_at_or_before_selection(self, recorded):
        program, pinball = recorded
        # This test exercises *live* checkpoint selection; drop any
        # embedded (format-v2) checkpoints so the recording mode the
        # suite runs under cannot shift the expected picks.
        pinball.checkpoints = []
        manager = CheckpointManager(pinball, program, interval=10)
        machine, injector = fresh_replay(pinball, program)
        for steps in (0, 25, 50):
            manager.capture(machine, injector, steps)
        assert manager.latest_at_or_before(24).steps_done == 0
        assert manager.latest_at_or_before(25).steps_done == 25
        assert manager.latest_at_or_before(999).steps_done == 50
        manager.drop_after(25)
        assert manager.latest_at_or_before(999).steps_done == 25

    def test_latest_before_any_is_none(self, recorded):
        program, pinball = recorded
        manager = CheckpointManager(pinball, program, interval=10)
        assert manager.latest_at_or_before(5) is None


@pytest.fixture
def v2_recorded():
    program = compile_source(SOURCE, name="cp")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                            rand_seed=9, pinball_format="v2",
                            checkpoint_interval=40)
    return program, pinball


class TestEmbeddedCheckpoints:
    """Format-v2 pinballs arrive with checkpoints already embedded: free
    rewind targets that exist before the session replays anything."""

    def test_recording_embeds_interior_checkpoints(self, v2_recorded):
        _program, pinball = v2_recorded
        steps = [c.steps_done for c in pinball.checkpoints]
        assert steps == sorted(steps)
        assert steps, "expected interior checkpoints at interval 40"
        assert all(s % 40 == 0 for s in steps)
        assert all(0 < s <= pinball.total_steps for s in steps)

    def test_due_counts_embedded(self, v2_recorded):
        program, pinball = v2_recorded
        manager = CheckpointManager(pinball, program, interval=40)
        # Before the first embedded checkpoint nothing covers the replay:
        # the session's step-0 live capture is still wanted.
        first = pinball.checkpoints[0].steps_done
        assert manager.due(0)
        # From there on, embedded checkpoints cover the whole region at
        # interval 40, so a live capture is never due inside it — zero
        # redundant snapshot memory for a fully checkpointed pinball.
        assert not any(manager.due(step)
                       for step in range(first, pinball.total_steps + 1))
        # Past the coverage horizon, live capture resumes.
        last = pinball.checkpoints[-1].steps_done
        assert manager.due(last + 40)

    def test_latest_at_or_before_prefers_later_embedded(self, v2_recorded):
        program, pinball = v2_recorded
        manager = CheckpointManager(pinball, program, interval=40)
        machine, injector = fresh_replay(pinball, program)
        manager.capture(machine, injector, 0)       # live, at step 0
        first = pinball.checkpoints[0].steps_done
        chosen = manager.latest_at_or_before(first + 5)
        assert chosen.steps_done == first           # embedded wins
        assert manager.latest_at_or_before(first - 1).steps_done == 0

    def test_materialize_decodes_once(self, v2_recorded):
        program, pinball = v2_recorded
        manager = CheckpointManager(pinball, program, interval=40)
        first = pinball.checkpoints[0].steps_done
        a = manager.latest_at_or_before(first)
        b = manager.latest_at_or_before(first)
        assert a is b                               # cached Checkpoint
        assert list(manager._embedded_cache) == [first]

    def test_restore_from_embedded_continues_identically(self,
                                                         v2_recorded):
        program, pinball = v2_recorded
        reference, _ = fresh_replay(pinball, program)
        reference.run(max_steps=pinball.total_steps)

        manager = CheckpointManager(pinball, program, interval=40)
        checkpoint = manager.latest_at_or_before(pinball.total_steps)
        assert checkpoint.steps_done > 0            # an embedded one
        machine, _injector = manager.restore(checkpoint)
        machine.run(max_steps=pinball.total_steps - checkpoint.steps_done)
        assert state_hash(machine) == state_hash(reference)
        assert machine.output == reference.output


class TestRemainingSchedule:
    """The prefix-sum + binary-search resume must equal the reference
    RLE walk at every possible step offset."""

    def test_prefix_sum_matches_reference_walk(self, recorded):
        program, pinball = recorded
        manager = CheckpointManager(pinball, program, interval=10)
        total = sum(count for _tid, count in pinball.schedule)
        for steps_done in range(total + 2):
            assert (manager._remaining_schedule(steps_done)
                    == remaining_schedule(pinball.schedule, steps_done)), (
                "divergence at steps_done=%d" % steps_done)

    def test_synthetic_run_boundaries(self, recorded):
        program, pinball = recorded
        schedule = [(0, 3), (1, 1), (0, 4), (2, 2)]
        pinball.schedule = schedule
        manager = CheckpointManager(pinball, program, interval=10)
        assert manager._remaining_schedule(0) == schedule
        assert manager._remaining_schedule(3) == schedule[1:]
        assert manager._remaining_schedule(4) == schedule[2:]
        assert manager._remaining_schedule(5) == [(0, 3), (2, 2)]
        assert manager._remaining_schedule(8) == [(2, 2)]
        assert manager._remaining_schedule(10) == []
        assert manager._remaining_schedule(99) == []
