"""Tests for checkpoint-based reverse debugging (paper Section 8 sketch)."""

import pytest

from repro.debugger import DrDebugCLI, DrDebugSession
from repro.debugger.checkpoints import CheckpointManager, remaining_schedule
from repro.debugger.session import DebuggerError
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.vm import RoundRobinScheduler

COUNTING = """
int g; int h;
int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) {
        g = g + 1;
        h = h + g;
    }
    print(h);
    return 0;
}
"""


def make_session(interval=40):
    program = compile_source(COUNTING, name="reverse")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    session = DrDebugSession(pinball, program, source=COUNTING)
    session.enable_reverse_debugging(interval)
    return session


class TestRemainingSchedule:
    def test_zero_skip_is_identity(self):
        schedule = [(0, 5), (1, 3)]
        assert remaining_schedule(schedule, 0) == [(0, 5), (1, 3)]

    def test_skip_within_first_run(self):
        assert remaining_schedule([(0, 5), (1, 3)], 2) == [(0, 3), (1, 3)]

    def test_skip_across_runs(self):
        assert remaining_schedule([(0, 5), (1, 3)], 6) == [(1, 2)]

    def test_skip_everything(self):
        assert remaining_schedule([(0, 5)], 5) == []
        assert remaining_schedule([(0, 5)], 99) == []


class TestReverseStepi:
    def test_rewind_restores_exact_state(self):
        session = make_session()
        session.restart()
        session.stepi(200)
        g_at_200 = session.print_var("g")
        session.stepi(100)
        assert session.print_var("g") != g_at_200 or True  # moved forward
        message = session.reverse_stepi(100)
        assert "backwards" in message
        assert session.steps_done == 200
        assert session.print_var("g") == g_at_200

    def test_forward_after_reverse_is_deterministic(self):
        session = make_session()
        session.restart()
        session.stepi(300)
        h_at_300 = session.print_var("h")
        session.reverse_stepi(150)
        session.stepi(150)
        assert session.steps_done == 300
        assert session.print_var("h") == h_at_300

    def test_reverse_past_start_clamps_to_zero(self):
        session = make_session()
        session.restart()
        session.stepi(10)
        session.reverse_stepi(10_000)
        assert session.steps_done == 0

    def test_repeated_single_reverse_steps(self):
        session = make_session(interval=16)
        session.restart()
        session.stepi(64)
        values = []
        for expected in (63, 62, 61, 60):
            session.reverse_stepi(1)
            assert session.steps_done == expected
            values.append(session.print_var("g"))
        # g is non-increasing going backwards.
        assert values == sorted(values, reverse=True)

    def test_requires_enabling(self):
        program = compile_source(COUNTING, name="reverse")
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        session = DrDebugSession(pinball, program)
        session.restart()
        with pytest.raises(DebuggerError):
            session.reverse_stepi(1)


class TestReverseStepAndContinue:
    def test_reverse_step_changes_line(self):
        session = make_session(interval=16)
        session.restart()
        session.stepi(80)
        line_before = session.current_line()
        session.reverse_step()
        assert session.current_line() != line_before

    def test_reverse_continue_returns_to_previous_hit(self):
        session = make_session(interval=32)
        session.breakpoints.add(line=6)           # g = g + 1
        session.run()                              # 1st hit
        session.continue_()                        # 2nd hit
        session.continue_()                        # 3rd hit
        steps_third = session.steps_done
        g_third = session.print_var("g")
        message = session.reverse_continue()
        assert "breakpoint" in message
        assert session.steps_done < steps_third
        # We are at the 2nd hit: g is one less than at the 3rd.
        assert session.print_var("g") == g_third - 1
        # Going forward again reaches the 3rd hit identically.
        session.continue_()
        assert session.steps_done == steps_third
        assert session.print_var("g") == g_third

    def test_reverse_continue_without_hits_reaches_start(self):
        session = make_session()
        session.breakpoints.add(line=9)           # print(h): hit once
        session.run()
        first_hit = session.steps_done
        message = session.reverse_continue()
        assert "beginning" in message
        assert session.steps_done == 0

    def test_reverse_continue_needs_breakpoints(self):
        session = make_session()
        session.restart()
        session.stepi(10)
        with pytest.raises(DebuggerError):
            session.reverse_continue()


class TestReverseOverRace(object):
    def test_reverse_through_racy_region(self, fig5):
        """Reverse execution is exact even across thread interleavings."""
        program, pinball, _seed = fig5
        session = DrDebugSession(pinball, program)
        session.enable_reverse_debugging(interval=8)
        session.restart()
        session.continue_()                       # runs to the failure
        end_steps = session.steps_done
        x_at_end = session.machine.memory.read(
            program.globals["x"].addr)
        midpoint = end_steps // 2
        session.reverse_stepi(end_steps - midpoint)
        assert session.steps_done == midpoint
        session.stepi(end_steps - midpoint)
        assert session.machine.memory.read(
            program.globals["x"].addr) == x_at_end


class TestReverseCli:
    def test_cli_roundtrip(self):
        program = compile_source(COUNTING, name="reverse")
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        cli = DrDebugCLI(DrDebugSession(pinball, program, source=COUNTING))
        assert "enabled" in cli.execute("record-on 32")
        cli.execute("break 6")
        cli.execute("run")
        cli.execute("continue")
        g_second = cli.execute("print g")
        cli.execute("continue")
        assert "breakpoint" in cli.execute("rc")
        assert cli.execute("print g") == g_second
        assert "backwards" in cli.execute("rsi 5")
        assert "thread" in cli.execute("rs")

    def test_cli_errors_are_reported(self):
        program = compile_source(COUNTING, name="reverse")
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        cli = DrDebugCLI(DrDebugSession(pinball, program))
        cli.execute("run")
        assert "error" in cli.execute("rsi")
