"""Tests for the gdb-style command interpreter."""

import pytest

from repro.debugger import DrDebugCLI, DrDebugSession
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.vm import RoundRobinScheduler

from tests.conftest import FIG5_SOURCE

PROGRAM = """
int g;
int main() {
    int x;
    x = 4;
    g = x * 10;
    return 0;
}
"""


@pytest.fixture
def cli():
    program = compile_source(PROGRAM, name="cli-test")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    return DrDebugCLI(DrDebugSession(pinball, program, source=PROGRAM))


@pytest.fixture
def fig5_cli(fig5):
    program, pinball, _seed = fig5
    return DrDebugCLI(DrDebugSession(pinball, program, source=FIG5_SOURCE))


class TestBasicCommands:
    def test_empty_and_unknown(self, cli):
        assert cli.execute("") == ""
        assert "undefined command" in cli.execute("flubber")

    def test_break_run_print(self, cli):
        assert "breakpoint 1" in cli.execute("break 6")
        assert "hit breakpoint" in cli.execute("run")
        assert cli.execute("print x") == "x = 4"
        assert cli.execute("print g") == "g = 0"
        assert "finished" in cli.execute("continue")
        assert cli.execute("print g") == "g = 40"

    def test_break_forms(self, cli):
        assert "breakpoint" in cli.execute("break main")
        assert "breakpoint" in cli.execute("break main:6")
        assert "error" in cli.execute("break")
        assert "error" in cli.execute("break nofunc")

    def test_info_break_and_delete(self, cli):
        cli.execute("break 6")
        assert "breakpoint 1" in cli.execute("info break")
        assert "deleted" in cli.execute("delete 1")
        assert cli.execute("info break") == "no breakpoints"

    def test_enable_disable(self, cli):
        cli.execute("break 6")
        assert "disabled" in cli.execute("disable 1")
        assert "finished" in cli.execute("run")
        assert "enabled" in cli.execute("enable 1")
        assert "hit breakpoint" in cli.execute("run")

    def test_stepi_and_where(self, cli):
        cli.execute("run")  # runs to end; restart for stepping
        cli.execute("restart")
        assert "stepped 3" in cli.execute("stepi 3")
        assert "thread 0" in cli.execute("where")

    def test_info_threads_and_thread_switch(self, fig5_cli):
        fig5_cli.execute("break thread2")
        fig5_cli.execute("run")
        output = fig5_cli.execute("info threads")
        assert "thread 0" in output and "thread 2" in output
        assert "focused thread 1" in fig5_cli.execute("thread 1")

    def test_backtrace(self, cli):
        cli.execute("break 6")
        cli.execute("run")
        assert "#0 main" in cli.execute("bt")

    def test_quit(self, cli):
        cli.execute("quit")
        assert cli.done

    def test_error_reported_not_raised(self, cli):
        cli.execute("restart")
        assert "error" in cli.execute("print nope")
        assert "error" in cli.execute("delete 99")


class TestSliceCommands:
    def test_slice_failure_summary(self, fig5_cli):
        output = fig5_cli.execute("slice-failure")
        assert "instruction instances" in output
        assert "thread1:6" in output    # the racy root cause

    def test_slice_for_variable(self, fig5_cli):
        output = fig5_cli.execute("slice x at 6 thread 1")
        assert "slice:" in output

    def test_slice_info_rendering(self, fig5_cli):
        fig5_cli.execute("slice-failure")
        output = fig5_cli.execute("slice-info")
        assert "criterion" in output
        assert "thread 1" in output

    def test_slice_save_load(self, fig5_cli, tmp_path):
        fig5_cli.execute("slice-failure")
        path = str(tmp_path / "s.json")
        assert "saved" in fig5_cli.execute("slice-save %s" % path)
        assert "slice:" in fig5_cli.execute("slice-load %s" % path)

    def test_slice_pinball_and_replay_flow(self, fig5_cli):
        fig5_cli.execute("slice-failure")
        output = fig5_cli.execute("slice-pinball")
        assert "instructions kept" in output
        assert "slice pinball" in fig5_cli.execute("slice-replay")
        stepped = fig5_cli.execute("slice-step")
        assert "slice step" in stepped or "finished" in stepped

    def test_slice_commands_need_slice(self, cli):
        assert "error" in cli.execute("slice-save /tmp/x.json")
        assert "no slice" in cli.execute("slice-info")
