"""Tests for the slice navigator (KDbg stand-in)."""

import pytest

from repro.debugger import SliceNavigator
from repro.slicing import SlicingSession

from tests.conftest import FIG5_SOURCE


@pytest.fixture
def navigator(fig5):
    program, pinball, _seed = fig5
    session = SlicingSession(pinball, program)
    dslice = session.slice_for(session.failure_criterion())
    return SliceNavigator(dslice, program, source=FIG5_SOURCE)


class TestNavigation:
    def test_cursor_starts_at_criterion(self, navigator):
        assert navigator.cursor == navigator.slice.criterion

    def test_activate_follows_edges_backwards(self, navigator):
        deps = navigator.deps()
        assert deps
        node = navigator.activate(0)
        assert navigator.cursor == deps[0][0]
        assert node.instance == deps[0][0]

    def test_back_undoes_activate(self, navigator):
        start = navigator.cursor
        navigator.activate(0)
        navigator.back()
        assert navigator.cursor == start

    def test_back_at_start_is_noop(self, navigator):
        start = navigator.cursor
        navigator.back()
        assert navigator.cursor == start

    def test_activate_out_of_range(self, navigator):
        with pytest.raises(IndexError):
            navigator.activate(999)

    def test_goto_slice_member(self, navigator):
        target = next(iter(navigator.slice.nodes))
        navigator.goto(target)
        assert navigator.cursor == target

    def test_goto_non_member_rejected(self, navigator):
        with pytest.raises(KeyError):
            navigator.goto((99, 99))

    def test_walk_to_root_cause(self, navigator):
        # Walking data edges backwards from the failed assert must reach
        # thread1 (the racy writer) within a few hops.
        seen_threads = {navigator.node().tid}
        frontier = [navigator.cursor]
        visited = set()
        while frontier:
            cursor = frontier.pop()
            if cursor in visited:
                continue
            visited.add(cursor)
            for producer, _kind, _loc in navigator.slice.deps_of(cursor):
                seen_threads.add(producer[0])
                frontier.append(producer)
        assert 1 in seen_threads


class TestRendering:
    def test_render_cursor_shows_deps(self, navigator):
        text = navigator.render_cursor()
        assert "at thread2:" in text
        assert "[0]" in text

    def test_render_source_markers(self, navigator):
        text = navigator.render_source()
        marked = [line for line in text.splitlines()
                  if line.startswith(">>") or line.startswith("=>")]
        assert marked
        # The racy line in thread1 is highlighted.
        assert any("x = z + 1" in line for line in marked)

    def test_render_source_without_source(self, fig5):
        program, pinball, _seed = fig5
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        navigator = SliceNavigator(dslice, program, source=None)
        assert "no source" in navigator.render_source()

    def test_render_summary(self, navigator):
        text = navigator.render_summary()
        assert "thread 1:" in text
        assert "thread 2:" in text
