"""Tests for the C-flavoured language extensions: compound assignment,
increment/decrement statements, and do-while."""

import pytest

from repro.lang import CompileError, compile_source, parse
from repro.lang import ast

from tests.conftest import run_and_output


class TestParsing:
    def test_compound_assign_carries_op(self):
        unit = parse("int main() { int x; x += 2; }")
        stmt = unit.functions[0].body.body[1]
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "+"

    def test_increment_desugars(self):
        unit = parse("int main() { int x; x++; x--; }")
        inc, dec = unit.functions[0].body.body[1:3]
        assert inc.op == "+" and isinstance(inc.value, ast.NumberLit)
        assert dec.op == "-"

    def test_do_while_node(self):
        unit = parse("int main() { int x; do { x++; } while (x < 3); }")
        stmt = unit.functions[0].body.body[1]
        assert isinstance(stmt, ast.DoWhile)
        assert stmt.body is not None and stmt.cond is not None

    def test_do_while_requires_semicolon(self):
        with pytest.raises(CompileError):
            parse("int main() { do { } while (1) }")

    def test_all_compound_ops_accepted(self):
        for op in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                   "<<=", ">>="):
            parse("int main() { int x; x %s 1; }" % op)


class TestSemantics:
    def test_compound_on_globals(self):
        source = """
int g = 10;
int main() {
    g += 7;  print(g);
    g *= 2;  print(g);
    return 0;
}
"""
        assert run_and_output(source) == [17, 34]

    def test_compound_on_array_elements(self):
        source = """
int a[3] = {1, 2, 3};
int main() {
    a[1] += 10;
    a[2] <<= 3;
    print(a[0]); print(a[1]); print(a[2]);
    return 0;
}
"""
        assert run_and_output(source) == [1, 12, 24]

    def test_compound_through_pointer(self):
        source = """
int g = 5;
int main() {
    int p;
    p = &g;
    *p += 100;
    print(g);
    return 0;
}
"""
        assert run_and_output(source) == [105]

    def test_address_side_effects_once(self):
        """`a[f()] += 1` must evaluate f() exactly once."""
        source = """
int a[4];
int calls;
int f() { calls++; return 1; }
int main() {
    a[f()] += 9;
    print(a[1]);
    print(calls);
    return 0;
}
"""
        assert run_and_output(source) == [9, 1]

    def test_increment_in_for_step(self):
        source = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 5; i++) { s += i; }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [10]

    def test_do_while_runs_at_least_once(self):
        source = """
int main() {
    int n;
    n = 0;
    do { n++; } while (0);
    print(n);
    return 0;
}
"""
        assert run_and_output(source) == [1]

    def test_do_while_loops_until_false(self):
        source = """
int main() {
    int n; int s;
    n = 0; s = 0;
    do { n++; s += n; } while (n < 4);
    print(n); print(s);
    return 0;
}
"""
        assert run_and_output(source) == [4, 10]

    def test_do_while_break_and_continue(self):
        source = """
int main() {
    int n; int s;
    n = 0; s = 0;
    do {
        n++;
        if (n % 2 == 0) { continue; }
        if (n > 7) { break; }
        s += n;
    } while (n < 100);
    print(s);
    return 0;
}
"""
        # odd n <= 7: 1 + 3 + 5 + 7
        assert run_and_output(source) == [16]

    def test_nested_do_while(self):
        source = """
int main() {
    int i; int j; int c;
    c = 0; i = 0;
    do {
        j = 0;
        do { j++; c++; } while (j < 3);
        i++;
    } while (i < 2);
    print(c);
    return 0;
}
"""
        assert run_and_output(source) == [6]

    def test_compound_float(self):
        source = """
float f = 1.5;
int main() {
    f *= 4.0;
    print(f);
    return 0;
}
"""
        assert run_and_output(source) == [6.0]
