"""Edge-case semantics: interactions between language features."""

import pytest

from tests.conftest import run_and_output, run_minic


class TestNestedConstructs:
    def test_switch_inside_loop_break_scopes_to_switch(self):
        source = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 4; i = i + 1) {
        switch (i) {
            case 0: s += 1; break;   // breaks the switch, not the loop
            case 1: s += 10; break;
            default: s += 100;
        }
    }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [1 + 10 + 100 + 100]

    def test_continue_inside_switch_targets_loop(self):
        source = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 5; i = i + 1) {
        switch (i % 2) {
            case 0: continue;
        }
        s += i;
    }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [1 + 3]

    def test_nested_ternaries_in_call_args(self):
        source = """
int pick(int a, int b) { return a * 10 + b; }
int main() {
    print(pick(1 < 2 ? 3 : 4, 5 > 6 ? 7 : 8));
    return 0;
}
"""
        assert run_and_output(source) == [38]

    def test_call_in_condition(self):
        source = """
int counter;
int bump() { counter += 1; return counter; }
int main() {
    while (bump() < 4) { }
    print(counter);
    return 0;
}
"""
        assert run_and_output(source) == [4]

    def test_recursion_with_switch(self):
        source = """
int collatz_steps(int n, int depth) {
    if (n == 1) { return depth; }
    switch (n % 2) {
        case 0: return collatz_steps(n / 2, depth + 1);
        case 1: return collatz_steps(3 * n + 1, depth + 1);
    }
    return -1;
}
int main() { print(collatz_steps(6, 0)); return 0; }
"""
        # 6 -> 3 -> 10 -> 5 -> 16 -> 8 -> 4 -> 2 -> 1 : 8 steps
        assert run_and_output(source) == [8]


class TestPointersAndArrays:
    def test_pointer_walk_with_compound_assign(self):
        source = """
int a[5] = {1, 2, 3, 4, 5};
int main() {
    int p; int s; int i;
    p = a;
    s = 0;
    for (i = 0; i < 5; i++) {
        s += *(p + i);
    }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [15]

    def test_array_of_function_results(self):
        source = """
int sq(int x) { return x * x; }
int main() {
    int a[4]; int i; int s;
    for (i = 0; i < 4; i++) { a[i] = sq(i); }
    s = 0;
    for (i = 0; i < 4; i++) { s += a[i]; }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [0 + 1 + 4 + 9]

    def test_heap_linked_chain(self):
        """malloc'd two-word cells: [value, next] — a linked list."""
        source = """
int main() {
    int head; int node; int prev; int i; int s;
    head = 0;
    for (i = 1; i <= 4; i++) {
        node = malloc(2);
        *node = i * i;
        node[1] = head;
        head = node;
    }
    s = 0;
    node = head;
    while (node != 0) {
        s += *node;
        node = node[1];
    }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [1 + 4 + 9 + 16]

    def test_swap_through_pointers(self):
        source = """
int swap(int p, int q) {
    int t;
    t = *p;
    *p = *q;
    *q = t;
    return 0;
}
int main() {
    int a; int b;
    a = 1; b = 2;
    swap(&a, &b);
    print(a); print(b);
    return 0;
}
"""
        assert run_and_output(source) == [2, 1]


class TestThreadsEdge:
    def test_thread_spawning_threads(self):
        source = """
int total; int m;
int leaf(int v) {
    lock(&m);
    total += v;
    unlock(&m);
    return 0;
}
int middle(int v) {
    int a; int b;
    a = spawn(leaf, v);
    b = spawn(leaf, v * 10);
    join(a); join(b);
    return 0;
}
int main() {
    int t;
    t = spawn(middle, 1);
    join(t);
    print(total);
    return 0;
}
"""
        assert run_and_output(source) == [11]

    def test_many_threads(self):
        source = """
int total; int m;
int worker(int v) {
    lock(&m);
    total += v;
    unlock(&m);
    return 0;
}
int main() {
    int tids[8]; int i;
    for (i = 0; i < 8; i++) { tids[i] = spawn(worker, i + 1); }
    for (i = 0; i < 8; i++) { join(tids[i]); }
    print(total);
    return 0;
}
"""
        assert run_and_output(source) == [36]

    def test_exit_value_through_join_chain(self):
        source = """
int triple(int v) { return v * 3; }
int relay(int v) { return join(spawn(triple, v)) + 1; }
int main() {
    print(join(spawn(relay, 5)));
    return 0;
}
"""
        assert run_and_output(source) == [16]
