"""Unit tests for the MiniC parser (AST shapes and error reporting)."""

import pytest

from repro.lang import ast, parse
from repro.lang.errors import CompileError


def parse_main(body):
    unit = parse("int main() { %s }" % body)
    return unit.functions[0].body.body


class TestTopLevel:
    def test_globals_and_functions(self):
        unit = parse("""
int g;
float f = 1.5;
int arr[4] = {1, 2, 3};
int main() { return 0; }
""")
        assert [g.name for g in unit.globals] == ["g", "f", "arr"]
        assert unit.globals[1].init == [1.5]
        assert unit.globals[2].array_size == 4
        assert unit.globals[2].init == [1, 2, 3]
        assert unit.functions[0].name == "main"

    def test_function_params(self):
        unit = parse("int f(int a, float b) { return 0; } int main() {}")
        assert unit.functions[0].params == [("int", "a"), ("float", "b")]

    def test_negative_global_init(self):
        unit = parse("int g = -5; int main() {}")
        assert unit.globals[0].init == [-5]


class TestStatements:
    def test_local_decl_with_init(self):
        stmts = parse_main("int x = 3;")
        assert isinstance(stmts[0], ast.LocalDecl)
        assert stmts[0].name == "x"
        assert isinstance(stmts[0].init, ast.NumberLit)

    def test_local_array_decl(self):
        stmts = parse_main("int a[10];")
        assert stmts[0].array_size == 10

    def test_assignment(self):
        stmts = parse_main("x = 1;")
        assert isinstance(stmts[0], ast.Assign)
        assert isinstance(stmts[0].target, ast.VarRef)

    def test_indexed_assignment(self):
        stmts = parse_main("a[i+1] = 2;")
        assert isinstance(stmts[0].target, ast.Index)

    def test_deref_assignment(self):
        stmts = parse_main("*p = 2;")
        assert isinstance(stmts[0].target, ast.Unary)
        assert stmts[0].target.op == "*"

    def test_if_else(self):
        stmts = parse_main("if (x) { y = 1; } else { y = 2; }")
        node = stmts[0]
        assert isinstance(node, ast.If)
        assert node.otherwise is not None

    def test_if_without_else(self):
        stmts = parse_main("if (x) y = 1;")
        assert stmts[0].otherwise is None

    def test_while(self):
        stmts = parse_main("while (x < 10) { x = x + 1; }")
        assert isinstance(stmts[0], ast.While)

    def test_for_full(self):
        stmts = parse_main("for (i = 0; i < 5; i = i + 1) { s = s + i; }")
        node = stmts[0]
        assert isinstance(node, ast.For)
        assert node.init is not None and node.cond is not None
        assert node.step is not None

    def test_for_empty_clauses(self):
        stmts = parse_main("for (;;) { break; }")
        node = stmts[0]
        assert node.init is None and node.cond is None and node.step is None

    def test_break_continue_return(self):
        stmts = parse_main("while (1) { break; } while (1) { continue; } return 5;")
        assert isinstance(stmts[0].body.body[0], ast.Break)
        assert isinstance(stmts[1].body.body[0], ast.Continue)
        assert isinstance(stmts[2], ast.Return)
        assert isinstance(stmts[2].value, ast.NumberLit)

    def test_switch(self):
        stmts = parse_main("""
switch (x) {
    case 1: a = 1; break;
    case -2: a = 2; break;
    default: a = 0;
}
""")
        node = stmts[0]
        assert isinstance(node, ast.Switch)
        assert [c.value for c in node.cases] == [1, -2, None]
        assert len(node.cases[0].body) == 2  # assignment + break

    def test_switch_fallthrough_bodies(self):
        stmts = parse_main("switch (x) { case 1: case 2: a = 1; }")
        node = stmts[0]
        assert node.cases[0].body == []
        assert len(node.cases[1].body) == 1

    def test_nested_blocks(self):
        stmts = parse_main("{ { x = 1; } }")
        assert isinstance(stmts[0], ast.Block)


class TestExpressions:
    def expr(self, text):
        stmts = parse_main("x = %s;" % text)
        return stmts[0].value

    def test_precedence_mul_over_add(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_compare_over_and(self):
        node = self.expr("a < b && c > d")
        assert node.op == "&&"
        assert node.left.op == "<"

    def test_left_associativity(self):
        node = self.expr("1 - 2 - 3")
        assert node.op == "-"
        assert node.left.op == "-"

    def test_parentheses(self):
        node = self.expr("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_unary_chain(self):
        node = self.expr("-!x")
        assert node.op == "-"
        assert node.operand.op == "!"

    def test_address_and_deref(self):
        node = self.expr("*(&y + 1)")
        assert node.op == "*"
        assert node.operand.op == "+"
        assert node.operand.left.op == "&"

    def test_ternary(self):
        node = self.expr("a ? b : c")
        assert isinstance(node, ast.Conditional)

    def test_ternary_right_assoc(self):
        node = self.expr("a ? b : c ? d : e")
        assert isinstance(node.otherwise, ast.Conditional)

    def test_call_with_args(self):
        node = self.expr("f(1, g(2), h())")
        assert isinstance(node, ast.Call)
        assert len(node.args) == 3
        assert isinstance(node.args[1], ast.Call)

    def test_indexing_chain(self):
        node = self.expr("a[1][2]")
        assert isinstance(node, ast.Index)
        assert isinstance(node.base, ast.Index)

    def test_shift_and_bitops(self):
        node = self.expr("a | b ^ c & d << 2")
        assert node.op == "|"
        assert node.right.op == "^"
        assert node.right.right.op == "&"
        assert node.right.right.right.op == "<<"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("int main() { x = 1 }")

    def test_bad_case_label(self):
        with pytest.raises(CompileError):
            parse("int main() { switch (x) { case y: break; } }")

    def test_statement_before_case(self):
        with pytest.raises(CompileError):
            parse("int main() { switch (x) { a = 1; } }")

    def test_bad_type(self):
        with pytest.raises(CompileError):
            parse("string main() { }")

    def test_error_has_line(self):
        with pytest.raises(CompileError) as excinfo:
            parse("int main() {\n  x = ;\n}")
        assert "line 2" in str(excinfo.value)
