"""Recursion regression tests: MiniC functions are first-class
recursive — deep self-recursion, mutual recursion, recursion inside
spawned threads, and save/restore pruning across recursive frames."""

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, replay
from repro.slicing import SliceOptions, TraceCollector
from repro.vm import RoundRobinScheduler

from tests.conftest import run_and_output


class TestSelfRecursion:
    def test_factorial(self):
        assert run_and_output("""
int fact(int n) {
    if (n < 2) { return 1; }
    return n * fact(n - 1);
}
int main() { print(fact(10)); return 0; }
""") == [3628800]

    def test_fibonacci_tree_recursion(self):
        assert run_and_output("""
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(15)); return 0; }
""") == [610]

    def test_deep_recursion_hundreds_of_frames(self):
        assert run_and_output("""
int down(int n) {
    if (n == 0) { return 0; }
    return 1 + down(n - 1);
}
int main() { print(down(500)); return 0; }
""") == [500]

    def test_recursion_with_locals_per_frame(self):
        """Each frame's locals must be independent (no static storage)."""
        assert run_and_output("""
int mix(int n) {
    int here; int below;
    here = n * n;
    if (n == 0) { return 0; }
    below = mix(n - 1);
    return here + below;
}
int main() { print(mix(6)); return 0; }
""") == [91]

    def test_recursive_struct_walk(self):
        assert run_and_output("""
struct Node { int v; struct Node* next; };
int length(struct Node* n) {
    if (n == 0) { return 0; }
    return 1 + length(n->next);
}
int main() {
    struct Node* head; struct Node* n;
    int i;
    head = 0;
    for (i = 0; i < 7; i = i + 1) {
        n = new Node;
        n->next = head;
        head = n;
    }
    print(length(head));
    return 0;
}
""") == [7]


class TestMutualRecursion:
    def test_even_odd(self):
        assert run_and_output("""
int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
int main() {
    print(is_even(10));
    print(is_odd(10));
    print(is_even(7));
    return 0;
}
""") == [1, 0, 0]


class TestRecursionUnderThreads:
    def test_recursive_workers(self):
        assert run_and_output("""
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int worker(int n) { return fib(n); }
int main() {
    int t1; int t2; int total;
    t1 = spawn(worker, 10);
    t2 = spawn(worker, 11);
    total = fib(9) + join(t1) + join(t2);
    print(total);
    return 0;
}
""") == [34 + 55 + 89]

    def test_independent_stacks(self):
        """Deep recursion in one thread must not disturb another's."""
        assert run_and_output("""
int down(int n) {
    if (n == 0) { return 0; }
    return 1 + down(n - 1);
}
int worker(int n) { return down(n); }
int main() {
    int t;
    t = spawn(worker, 300);
    print(down(200));
    print(join(t));
    return 0;
}
""") == [200, 300]


class TestSaveRestoreOnRecursiveFrames:
    def _collect(self, source):
        program = compile_source(source)
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        collector = TraceCollector(program, SliceOptions(max_save=10))
        replay(pinball, program, tools=[collector], verify=False)
        return collector

    def test_pairs_verified_once_per_recursive_frame(self):
        depth = 12
        collector = self._collect("""
int down(int n) {
    int t;
    if (n == 0) { return 0; }
    t = down(n - 1);
    return 1 + t;
}
int main() { return down(%d); }
""" % depth)
        detector = collector.save_restore
        # Every one of the depth+1 dynamic calls to down() verifies at
        # least its fp push/pop, plus main's own pair.
        assert detector.pair_count >= depth + 2

    def test_interleaved_frames_pair_correctly(self):
        """Tree recursion interleaves save/restore pairs from sibling
        calls; each restore must link to *its* frame's save."""
        collector = self._collect("""
int fib(int n) {
    int a; int b;
    if (n < 2) { return n; }
    a = fib(n - 1);
    b = fib(n - 2);
    return a + b;
}
int main() { return fib(8); }
""")
        for restore, save in collector.save_restore.verified.items():
            assert restore[0] == save[0]
            assert save[1] < restore[1]
