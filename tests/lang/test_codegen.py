"""Code-generation structure tests: the compiled shape, not just results.

These pin down the properties later layers rely on: switch jump tables
dispatch through ``ijmp``, prologues/epilogues form save/restore pairs,
locals are register-allocated unless address-taken, and line debug info
survives compilation.
"""

import pytest

from repro.isa.instructions import Opcode
from repro.lang import CompileError, compile_source
from repro.lang.symbols import CALLEE_SAVED, layout_function
from repro.lang.parser import parse


def instrs_of(source, func):
    return compile_source(source).functions[func].instrs


class TestSwitchLowering:
    DENSE = """
int f(int x) {
    int r;
    switch (x) {
        case 0: r = 1; break;
        case 1: r = 2; break;
        case 2: r = 3; break;
    }
    return r;
}
int main() { return f(1); }
"""
    SPARSE = """
int f(int x) {
    int r;
    switch (x) {
        case 0: r = 1; break;
        case 100: r = 2; break;
        case 1000: r = 3; break;
    }
    return r;
}
int main() { return f(1); }
"""

    def test_dense_switch_uses_jump_table(self):
        ops = [i.op for i in instrs_of(self.DENSE, "f")]
        assert Opcode.IJMP in ops

    def test_dense_switch_emits_table_data(self):
        program = compile_source(self.DENSE)
        assert any(name.startswith("__jt_f") for name in program.data_defs)

    def test_sparse_switch_uses_compare_chain(self):
        ops = [i.op for i in instrs_of(self.SPARSE, "f")]
        assert Opcode.IJMP not in ops

    def test_jump_table_covers_holes_with_default(self):
        source = """
int f(int x) {
    int r;
    switch (x) {
        case 0: r = 1; break;
        case 2: r = 3; break;
        case 4: r = 5; break;
        default: r = -1;
    }
    return r;
}
int main() { return 0; }
"""
        program = compile_source(source)
        table = next(d for name, d in program.data_defs.items()
                     if name.startswith("__jt_f"))
        assert len(table.values) == 5  # 0..4 inclusive


class TestPrologueEpilogue:
    SOURCE = """
int f(int a) {
    int x; int y;
    x = a + 1;
    y = x * 2;
    return y;
}
int main() { return f(1); }
"""

    def test_prologue_saves_fp_and_callee_saved(self):
        instrs = instrs_of(self.SOURCE, "f")
        assert instrs[0].op == Opcode.PUSH
        assert instrs[0].operands[0].name == "fp"
        pushed = [i.operands[0].name for i in instrs[:8]
                  if i.op == Opcode.PUSH]
        assert "r4" in pushed and "r5" in pushed

    def test_epilogue_restores_in_reverse(self):
        instrs = instrs_of(self.SOURCE, "f")
        pops = [i.operands[0].name for i in instrs if i.op == Opcode.POP]
        assert pops[-1] == "fp"
        assert pops[:-1] == ["r5", "r4"]

    def test_single_ret(self):
        instrs = instrs_of(self.SOURCE, "f")
        assert sum(1 for i in instrs if i.op == Opcode.RET) == 1
        assert instrs[-1].op == Opcode.RET


class TestLocalAllocation:
    def test_scalars_in_registers(self):
        unit = parse("int f() { int a; int b; return a + b; } int main() {}")
        layout = layout_function(unit.functions[0])
        assert layout.slots["a"].storage == "reg"
        assert layout.slots["b"].storage == "reg"
        assert layout.slots["a"].reg in CALLEE_SAVED

    def test_address_taken_forces_stack(self):
        unit = parse("int f() { int a; lock(&a); return a; } int main() {}")
        layout = layout_function(unit.functions[0])
        assert layout.slots["a"].storage == "stack"

    def test_arrays_on_stack(self):
        unit = parse("int f() { int a[4]; return a[0]; } int main() {}")
        layout = layout_function(unit.functions[0])
        assert layout.slots["a"].storage == "stack"
        assert layout.stack_words == 4

    def test_register_overflow_to_stack(self):
        source = ("int f() { int a; int b; int c; int d; int e; int g; "
                  "return a; } int main() {}")
        layout = layout_function(parse(source).functions[0])
        storages = [layout.slots[n].storage for n in "abcdeg"]
        assert storages.count("reg") == len(CALLEE_SAVED)
        assert storages.count("stack") == 2

    def test_params_at_positive_offsets(self):
        unit = parse("int f(int a, int b) { return a; } int main() {}")
        layout = layout_function(unit.functions[0])
        assert layout.slots["a"].offset == 2
        assert layout.slots["b"].offset == 3

    def test_duplicate_local_rejected(self):
        with pytest.raises(CompileError):
            compile_source("int f() { int a; int a; return 0; } int main() {}")


class TestDebugInfo:
    def test_lines_attached_to_instructions(self):
        source = "int main() {\n  int x;\n  x = 1;\n  return x;\n}\n"
        program = compile_source(source)
        lines = {i.line for i in program.functions["main"].instrs}
        assert 3 in lines and 4 in lines

    def test_reg_locals_in_debug_info(self):
        program = compile_source(
            "int main() { int x; x = 1; return x; }")
        assert "x" in program.functions["main"].reg_locals

    def test_stack_locals_in_debug_info(self):
        program = compile_source(
            "int main() { int a[2]; a[0] = 1; return a[0]; }")
        assert "a" in program.functions["main"].local_offsets


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return nope; }")

    def test_unknown_function(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return nope(); }")

    def test_builtin_arity(self):
        with pytest.raises(CompileError):
            compile_source("int main() { print(1, 2); return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_source("int main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError):
            compile_source("int main() { continue; }")

    def test_continue_in_switch_requires_loop(self):
        with pytest.raises(CompileError):
            compile_source(
                "int main() { switch (1) { case 1: continue; } return 0; }")

    def test_no_main(self):
        with pytest.raises(CompileError):
            compile_source("int f() { return 0; }")

    def test_assign_to_array_name(self):
        with pytest.raises(CompileError):
            compile_source("int a[3]; int main() { a = 1; return 0; }")

    def test_spawn_needs_function(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return spawn(5, 0); }")
