"""Structs, heap objects and pointer-chasing: parsing, layout, and
end-to-end semantics of the MiniC struct surface."""

import pytest

from repro.lang import CompileError, compile_source, parse
from repro.lang import ast
from repro.lang.symbols import build_struct_table, type_size

from tests.conftest import run_and_output


class TestParsing:
    def test_struct_decl_fields(self):
        unit = parse("struct Point { int x; int y; };")
        assert len(unit.structs) == 1
        decl = unit.structs[0]
        assert decl.name == "Point"
        assert decl.fields == [("int", "x"), ("int", "y")]

    def test_struct_decl_requires_trailing_semicolon(self):
        with pytest.raises(CompileError):
            parse("struct Point { int x; }")

    def test_pointer_fields_use_struct_keyword(self):
        unit = parse("struct Node { int v; struct Node* next; };")
        assert unit.structs[0].fields == [("int", "v"), ("Node*", "next")]

    def test_member_arrow_vs_dot(self):
        unit = parse("""
struct P { int x; };
int main() { struct P p; struct P* q; p.x = 1; q->x = 2; }
""")
        dot, arrow = unit.functions[0].body.body[2:4]
        assert isinstance(dot.target, ast.Member) and not dot.target.arrow
        assert isinstance(arrow.target, ast.Member) and arrow.target.arrow

    def test_new_delete_sizeof_nodes(self):
        unit = parse("""
struct P { int x; };
int main() { struct P* p; p = new P; print(sizeof(P)); delete p; }
""")
        body = unit.functions[0].body.body
        assert isinstance(body[1].value, ast.New)
        assert body[1].value.type_name == "P"
        assert isinstance(body[3], ast.Delete)

    def test_void_field_rejected(self):
        with pytest.raises(CompileError):
            parse("struct P { void x; };")

    def test_array_field_rejected(self):
        with pytest.raises(CompileError):
            parse("struct P { int xs[4]; };")

    def test_duplicate_field_rejected(self):
        with pytest.raises(CompileError):
            parse("struct P { int x; int x; };")


class TestLayout:
    def test_field_offsets_are_cumulative(self):
        unit = parse("struct P { int x; float y; int z; };")
        table = build_struct_table(unit.structs)
        layout = table["P"]
        assert [layout.fields[n].offset for n in ("x", "y", "z")] == [0, 1, 2]
        assert layout.size == 3

    def test_nested_by_value_embedding(self):
        unit = parse("""
struct Inner { int a; int b; };
struct Outer { int before; struct Inner mid; int after; };
""")
        table = build_struct_table(unit.structs)
        outer = table["Outer"]
        assert outer.fields["mid"].offset == 1
        assert outer.fields["mid"].size == 2
        assert outer.fields["after"].offset == 3
        assert outer.size == 4

    def test_pointer_fields_are_one_word(self):
        unit = parse("struct Node { int v; struct Node* next; };")
        table = build_struct_table(unit.structs)
        assert table["Node"].size == 2
        assert type_size("Node*", table) == 1
        assert type_size("Node", table) == 2

    def test_recursive_by_value_rejected(self):
        unit = parse("struct Node { int v; struct Node inner; };")
        with pytest.raises(CompileError, match="pointer"):
            build_struct_table(unit.structs)

    def test_duplicate_struct_rejected(self):
        unit = parse("struct P { int x; }; struct P { int y; };")
        with pytest.raises(CompileError):
            build_struct_table(unit.structs)


class TestSemantics:
    def test_heap_object_field_roundtrip(self):
        assert run_and_output("""
struct Point { int x; int y; };
int main() {
    struct Point* p;
    p = new Point;
    p->x = 3;
    p->y = 4;
    print(p->x * p->x + p->y * p->y);
    delete p;
    return 0;
}
""") == [25]

    def test_deref_dot_equivalent_to_arrow(self):
        assert run_and_output("""
struct P { int x; };
int main() {
    struct P* p;
    p = new P;
    (*p).x = 11;
    print(p->x);
    return 0;
}
""") == [11]

    def test_linked_list_build_and_chase(self):
        assert run_and_output("""
struct Node { int value; struct Node* next; };
int main() {
    struct Node* head; struct Node* n;
    int i; int sum;
    head = 0;
    for (i = 1; i <= 5; i = i + 1) {
        n = new Node;
        n->value = i * i;
        n->next = head;
        head = n;
    }
    sum = 0;
    n = head;
    while (n != 0) { sum = sum + n->value; n = n->next; }
    print(sum);
    return 0;
}
""") == [55]

    def test_struct_local_and_dot_access(self):
        assert run_and_output("""
struct P { int x; int y; };
int main() {
    struct P p;
    p.x = 7;
    p.y = p.x + 1;
    print(p.x); print(p.y);
    return 0;
}
""") == [7, 8]

    def test_global_struct_value(self):
        assert run_and_output("""
struct P { int x; int y; };
struct P origin;
int main() {
    origin.x = 2;
    origin.y = 3;
    print(origin.x + origin.y);
    return 0;
}
""") == [5]

    def test_nested_struct_field_chains(self):
        assert run_and_output("""
struct Inner { int a; int b; };
struct Outer { int before; struct Inner mid; int after; };
int main() {
    struct Outer o;
    o.before = 1;
    o.mid.a = 8;
    o.mid.b = 99;
    o.after = 4;
    print(o.before); print(o.mid.a); print(o.mid.b); print(o.after);
    return 0;
}
""") == [1, 8, 99, 4]

    def test_struct_array_indexing(self):
        assert run_and_output("""
struct P { int x; int y; };
int main() {
    struct P pts[3];
    int i;
    for (i = 0; i < 3; i = i + 1) {
        pts[i].x = i;
        pts[i].y = i * 10;
    }
    print(pts[0].y + pts[1].y + pts[2].y + pts[2].x);
    return 0;
}
""") == [32]

    def test_array_of_struct_pointers(self):
        assert run_and_output("""
struct P { int x; };
struct P* slots[4];
int main() {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        slots[i] = new P;
        slots[i]->x = i + 1;
    }
    print(slots[0]->x + slots[1]->x + slots[2]->x + slots[3]->x);
    return 0;
}
""") == [10]

    def test_struct_copy_assignment(self):
        assert run_and_output("""
struct P { int x; int y; };
int main() {
    struct P a; struct P b;
    a.x = 5; a.y = 6;
    b = a;
    a.x = 0;
    print(b.x); print(b.y);
    return 0;
}
""") == [5, 6]

    def test_struct_by_value_parameter(self):
        assert run_and_output("""
struct P { int x; int y; };
int dist2(struct P p) {
    p.x = p.x * p.x;
    return p.x + p.y * p.y;
}
int main() {
    struct P q;
    q.x = 3; q.y = 4;
    print(dist2(q));
    print(q.x);
    return 0;
}
""") == [25, 3]

    def test_pointer_returning_function(self):
        assert run_and_output("""
struct Node { int v; struct Node* next; };
struct Node* cons(int v, struct Node* rest) {
    struct Node* n;
    n = new Node;
    n->v = v;
    n->next = rest;
    return n;
}
int main() {
    struct Node* xs;
    xs = cons(1, cons(2, cons(3, 0)));
    print(xs->v + xs->next->v * 10 + xs->next->next->v * 100);
    return 0;
}
""") == [321]

    def test_sizeof_matches_layout(self):
        assert run_and_output("""
struct Inner { int a; int b; };
struct Outer { int before; struct Inner mid; int after; };
int main() {
    print(sizeof(Inner));
    print(sizeof(Outer));
    return 0;
}
""") == [2, 4]

    def test_new_delete_reuses_address(self):
        assert run_and_output("""
struct P { int x; int y; };
int main() {
    struct P* a; struct P* b;
    a = new P;
    delete a;
    b = new P;
    print(a == b);
    return 0;
}
""") == [1]

    def test_address_of_field(self):
        assert run_and_output("""
struct P { int x; int y; };
int main() {
    struct P p;
    int q;
    p.x = 1;
    q = &p.y;
    *q = 42;
    print(p.y);
    return 0;
}
""") == [42]

    def test_struct_field_through_malloc_free_sugar(self):
        """``new``/``delete`` are sugar over the malloc/free syscalls —
        a raw malloc of sizeof(T) words is interchangeable."""
        assert run_and_output("""
struct P { int x; int y; };
int main() {
    struct P* p;
    p = malloc(sizeof(P));
    p->y = 9;
    print(p->y);
    delete p;
    return 0;
}
""") == [9]
