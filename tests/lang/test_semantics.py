"""Execution-based semantics tests: compiled MiniC behaves like C."""

import pytest

from tests.conftest import run_and_output, run_minic


def out1(expr, decls=""):
    """Run ``print(expr)`` in main and return the single printed value."""
    source = "%s\nint main() { print(%s); return 0; }" % (decls, expr)
    output = run_and_output(source)
    assert len(output) == 1
    return output[0]


class TestArithmetic:
    def test_basic(self):
        assert out1("1 + 2 * 3 - 4") == 3

    def test_precedence_with_parens(self):
        assert out1("(1 + 2) * (3 + 4)") == 21

    def test_division_truncates_toward_zero(self):
        assert out1("7 / 2") == 3
        assert out1("-7 / 2") == -3
        assert out1("7 / -2") == -3

    def test_modulo_sign_follows_dividend(self):
        assert out1("7 % 3") == 1
        assert out1("-7 % 3") == -1
        assert out1("7 % -3") == 1

    def test_bitwise(self):
        assert out1("12 & 10") == 8
        assert out1("12 | 10") == 14
        assert out1("12 ^ 10") == 6
        assert out1("~0") == -1

    def test_shifts(self):
        assert out1("3 << 4") == 48
        assert out1("48 >> 4") == 3

    def test_comparisons(self):
        assert out1("3 < 5") == 1
        assert out1("5 < 3") == 0
        assert out1("3 <= 3") == 1
        assert out1("3 == 3") == 1
        assert out1("3 != 3") == 0
        assert out1("5 >= 6") == 0

    def test_unary(self):
        assert out1("-(3 + 4)") == -7
        assert out1("!0") == 1
        assert out1("!7") == 0

    def test_float_arithmetic(self):
        assert out1("1.5 + 2.5") == 4.0
        assert abs(out1("1.0 / 4.0") - 0.25) < 1e-12

    def test_deep_expression_spills(self):
        # Deeper than the 3-register eval stack: forces spill paths.
        expr = "((1+2)*(3+4)) + ((5+6)*(7+8)) + ((9+10)*(11+12))"
        assert out1(expr) == 21 + 165 + 437

    def test_very_deep_nesting(self):
        expr = "1"
        for i in range(2, 12):
            expr = "(%s + %d)" % (expr, i)
        assert out1(expr) == sum(range(1, 12))


class TestShortCircuit:
    def test_and_or_values(self):
        assert out1("1 && 2") == 1
        assert out1("0 && 2") == 0
        assert out1("0 || 3") == 1
        assert out1("0 || 0") == 0

    def test_and_short_circuits(self):
        # Division by zero on the right must not execute.
        source = """
int main() {
    int z;
    z = 0;
    print(z != 0 && 10 / z > 0);
    return 0;
}
"""
        assert run_and_output(source) == [0]

    def test_or_short_circuits(self):
        source = """
int main() {
    int z;
    z = 0;
    print(z == 0 || 10 / z > 0);
    return 0;
}
"""
        assert run_and_output(source) == [1]


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
int grade(int s) {
    if (s >= 90) { return 4; }
    else if (s >= 80) { return 3; }
    else if (s >= 70) { return 2; }
    else { return 0; }
}
int main() {
    print(grade(95)); print(grade(85)); print(grade(72)); print(grade(10));
    return 0;
}
"""
        assert run_and_output(source) == [4, 3, 2, 0]

    def test_while_loop(self):
        source = """
int main() {
    int i; int s;
    s = 0; i = 1;
    while (i <= 10) { s = s + i; i = i + 1; }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [55]

    def test_for_with_break_continue(self):
        source = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        s = s + i;
    }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [1 + 3 + 5 + 7 + 9]

    def test_nested_loops(self):
        source = """
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 4; j = j + 1) {
            if (j > i) { break; }
            s = s + 1;
        }
    }
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [1 + 2 + 3 + 4]

    def test_switch_dense(self):
        source = """
int f(int x) {
    switch (x) {
        case 0: return 10;
        case 1: return 11;
        case 2: return 12;
        default: return -1;
    }
}
int main() {
    print(f(0)); print(f(2)); print(f(5)); print(f(-3));
    return 0;
}
"""
        assert run_and_output(source) == [10, 12, -1, -1]

    def test_switch_fallthrough(self):
        source = """
int main() {
    int r;
    r = 0;
    switch (1) {
        case 0: r = r + 1;
        case 1: r = r + 10;
        case 2: r = r + 100;
        break;
        case 3: r = r + 1000;
    }
    print(r);
    return 0;
}
"""
        assert run_and_output(source) == [110]

    def test_ternary(self):
        assert out1("5 > 3 ? 10 : 20") == 10
        assert out1("5 < 3 ? 10 : 20") == 20


class TestFunctions:
    def test_recursion_fib(self):
        source = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(12)); return 0; }
"""
        assert run_and_output(source) == [144]

    def test_mutual_recursion(self):
        source = """
int is_odd(int n);
int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
int main() { print(is_even(10)); print(is_odd(10)); return 0; }
"""
        # Forward declarations are not supported; rewrite without them.
        source = """
int helper(int n, int want_even) {
    if (n == 0) { return want_even; }
    return helper(n - 1, 1 - want_even);
}
int main() { print(helper(10, 1)); print(helper(9, 1)); return 0; }
"""
        assert run_and_output(source) == [1, 0]

    def test_multiple_args(self):
        source = """
int f(int a, int b, int c) { return a * 100 + b * 10 + c; }
int main() { print(f(1, 2, 3)); return 0; }
"""
        assert run_and_output(source) == [123]

    def test_fall_off_end_returns_zero(self):
        source = "int f() { } int main() { print(f() + 7); return 0; }"
        assert run_and_output(source) == [7]

    def test_locals_preserved_across_calls(self):
        # Caller's register locals must survive the callee (save/restore).
        source = """
int clobber(int n) {
    int a; int b; int c; int d;
    a = n; b = n + 1; c = n + 2; d = n + 3;
    return a + b + c + d;
}
int main() {
    int x; int y;
    x = 5;
    y = clobber(100);
    print(x);
    print(y);
    return 0;
}
"""
        assert run_and_output(source) == [5, 406]

    def test_deep_call_chain(self):
        source = """
int f3(int x) { int t; t = x * 2; return t + 1; }
int f2(int x) { int t; t = f3(x) + 3; return t; }
int f1(int x) { int t; t = f2(x) * f3(x); return t; }
int main() { print(f1(4)); return 0; }
"""
        assert run_and_output(source) == [(4 * 2 + 1 + 3) * (4 * 2 + 1)]


class TestArraysAndPointers:
    def test_global_array(self):
        source = """
int a[5];
int main() {
    int i;
    for (i = 0; i < 5; i = i + 1) { a[i] = i * i; }
    print(a[0] + a[1] + a[2] + a[3] + a[4]);
    return 0;
}
"""
        assert run_and_output(source) == [30]

    def test_global_array_initializer(self):
        source = """
int a[4] = {10, 20, 30, 40};
int main() { print(a[2]); return 0; }
"""
        assert run_and_output(source) == [30]

    def test_local_array(self):
        source = """
int main() {
    int a[3]; int i; int s;
    for (i = 0; i < 3; i = i + 1) { a[i] = i + 1; }
    s = a[0] * a[1] * a[2];
    print(s);
    return 0;
}
"""
        assert run_and_output(source) == [6]

    def test_pointer_to_global(self):
        source = """
int g;
int main() {
    int p;
    p = &g;
    *p = 42;
    print(g);
    return 0;
}
"""
        assert run_and_output(source) == [42]

    def test_pointer_to_local(self):
        source = """
int main() {
    int x; int p;
    x = 1;
    p = &x;
    *p = 99;
    print(x);
    return 0;
}
"""
        assert run_and_output(source) == [99]

    def test_pointer_arithmetic_into_array(self):
        source = """
int a[4] = {5, 6, 7, 8};
int main() {
    int p;
    p = &a[1];
    print(*p);
    print(*(p + 2));
    return 0;
}
"""
        assert run_and_output(source) == [6, 8]

    def test_malloc_free(self):
        source = """
int main() {
    int p; int q;
    p = malloc(4);
    *p = 11;
    p[1] = 22;
    print(*p + p[1]);
    free(p);
    q = malloc(4);
    print(q == p);
    return 0;
}
"""
        # The freed block is reused by the next same-size allocation.
        assert run_and_output(source) == [33, 1]


class TestBuiltins:
    def test_input_stream(self):
        source = """
int main() {
    print(input() + input());
    print(input());
    return 0;
}
"""
        assert run_and_output(source, inputs=[10, 20, 30]) == [30, 30]

    def test_input_exhausted_returns_zero(self):
        source = "int main() { print(input()); return 0; }"
        assert run_and_output(source, inputs=[]) == [0]

    def test_rand_bounded_and_deterministic(self):
        source = """
int main() {
    int i;
    for (i = 0; i < 20; i = i + 1) { print(rand(10)); }
    return 0;
}
"""
        first = run_and_output(source, rand_seed=5)
        second = run_and_output(source, rand_seed=5)
        assert first == second
        assert all(0 <= v < 10 for v in first)
        assert run_and_output(source, rand_seed=6) != first

    def test_exit_stops_program(self):
        source = """
int main() {
    print(1);
    exit(3);
    print(2);
    return 0;
}
"""
        machine = run_minic(source)
        assert machine.output == [1]
        assert machine.exit_code == 3

    def test_assert_failure_recorded(self):
        source = "int main() { assert(1 == 2, 77); return 0; }"
        machine = run_minic(source)
        assert machine.failure is not None
        assert machine.failure["code"] == 77

    def test_assert_pass_is_noop(self):
        source = "int main() { assert(1 == 1, 77); print(5); return 0; }"
        machine = run_minic(source)
        assert machine.failure is None
        assert machine.output == [5]

    def test_time_is_monotonic(self):
        source = """
int main() {
    int a; int b;
    a = time();
    b = time();
    print(b >= a);
    return 0;
}
"""
        assert run_and_output(source) == [1]
