"""Table-driven tests for the struct/pointer diagnostics.

Every diagnostic must carry the source position (line and column of the
offending token), so debugger users get pointed at the exact field
access or delete that is wrong."""

import pytest

from repro.lang import CompileError, compile_source, parse

#: (source, message fragment, line, col) — compile must fail exactly there.
CASES = [
    # Unknown field.
    ("""struct P { int x; };
int main() { struct P* p; p = new P; p->zz = 1; }""",
     "struct P has no field 'zz'", 2, 41),
    ("""struct P { int x; };
int main() { struct P q; print(q.nope); }""",
     "struct P has no field 'nope'", 2, 34),
    # Field access through a non-pointer (arrow on a plain int).
    ("""struct P { int x; };
int main() { int v; v->x = 1; }""",
     "'->x' applied to non-pointer value of type 'int'", 2, 24),
    # Arrow through a pointer whose pointee is not a struct.
    ("int main() { int* v; v->x = 1; }",
     "'->x' through pointer to non-struct type 'int*'", 1, 25),
    # Dot on a pointer (should have been an arrow).
    ("""struct P { int x; };
int main() { struct P* p; p.x = 1; }""",
     "'.x' applied to pointer of type 'P*'", 2, 29),
    # Dot on a non-struct value.
    ("int main() { int v; int w; w = v.x; }",
     "'.x' applied to non-struct value of type 'int'", 1, 34),
    # Arrow through a pointer to an undeclared struct.
    ("int main() { struct Q* p; p->x = 1; }",
     "'->x' through pointer to non-struct type 'Q*'", 1, 30),
    # delete of a non-pointer expression (anchored on the keyword).
    ("int main() { int v; delete v; }",
     "delete of a non-pointer expression (type 'int')", 1, 21),
    ("""struct P { int x; };
int main() { struct P q; delete q; }""",
     "delete of a non-pointer expression (type 'P')", 2, 26),
    # new of an undeclared struct.
    ("int main() { int p; p = new Q; }",
     "new of unknown struct 'Q'", 1, 29),
]


@pytest.mark.parametrize("source,fragment,line,col", CASES,
                         ids=[c[1][:40] for c in CASES])
def test_diagnostic_message_and_position(source, fragment, line, col):
    with pytest.raises(CompileError) as excinfo:
        compile_source(source)
    err = excinfo.value
    assert fragment in str(err)
    assert err.line == line
    assert err.col == col


#: Parse-time struct declaration errors (position on the bad token).
PARSE_CASES = [
    ("struct P { void x; };", "struct field cannot have type void"),
    ("struct P { int xs[4]; };", "array fields are not supported"),
    ("struct P { int x; int x; };", "duplicate field 'x'"),
]


@pytest.mark.parametrize("source,fragment", PARSE_CASES,
                         ids=[c[1][:40] for c in PARSE_CASES])
def test_struct_decl_errors(source, fragment):
    with pytest.raises(CompileError) as excinfo:
        parse(source)
    err = excinfo.value
    assert fragment in str(err)
    assert err.line is not None


def test_struct_by_value_return_rejected():
    with pytest.raises(CompileError, match="return a pointer"):
        compile_source("""
struct P { int x; };
struct P f() { struct P p; return p; }
int main() { return 0; }
""")


def test_mismatched_struct_copy_rejected():
    with pytest.raises(CompileError, match="cannot assign"):
        compile_source("""
struct A { int x; };
struct B { int x; int y; };
int main() { struct A a; struct B b; a = b; return 0; }
""")


def test_positions_survive_real_indentation():
    """Columns count from 1 and track the offending token, not the
    statement start."""
    source = "struct P { int x; };\nint main() {\n    struct P* p;\n    p = new P;\n    p->oops = 1;\n}\n"
    with pytest.raises(CompileError) as excinfo:
        compile_source(source)
    assert excinfo.value.line == 5
    assert excinfo.value.col == source.splitlines()[4].index("oops") + 1
