"""Unit tests for the MiniC lexer."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while bar")
        assert [t.kind for t in tokens[:-1]] == ["kw", "ident", "kw", "ident"]

    def test_int_literals(self):
        tokens = tokenize("0 42 123456")
        assert [t.value for t in tokens[:-1]] == [0, 42, 123456]
        assert all(t.kind == "int" for t in tokens[:-1])

    def test_hex_literals(self):
        tokens = tokenize("0x10 0xff")
        assert [t.value for t in tokens[:-1]] == [16, 255]

    def test_float_literals(self):
        tokens = tokenize("1.5 0.25 2e3 1.5e-2")
        assert [t.value for t in tokens[:-1]] == [1.5, 0.25, 2000.0, 0.015]
        assert all(t.kind == "float" for t in tokens[:-1])

    def test_multi_char_operators(self):
        assert texts("<= >= == != && || << >>") == [
            "<=", ">=", "==", "!=", "&&", "||", "<<", ">>"]

    def test_compound_assignment_operators(self):
        assert texts("+= -= *= /= %= &= |= ^= <<= >>= ++ --") == [
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
            "<<=", ">>=", "++", "--"]

    def test_maximal_munch(self):
        # Longest operator wins: "<<=" is one token, like C.
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a+ +b") == ["a", "+", "+", "b"]
        assert texts("a++b") == ["a", "++", "b"]

    def test_single_char_operators(self):
        assert texts("+ - * / % & | ^ ~ ! ( ) { } [ ] ; , ? :") == [
            "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
            "(", ")", "{", "}", "[", "]", ";", ",", "?", ":"]


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_line_numbers_after_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2

    def test_columns(self):
        tokens = tokenize("ab cd")
        assert tokens[0].col == 1
        assert tokens[1].col == 4


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(CompileError) as excinfo:
            tokenize("a $ b")
        assert "line 1" in str(excinfo.value)

    def test_bad_number(self):
        with pytest.raises(CompileError):
            tokenize("1.2.3")
