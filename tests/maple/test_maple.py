"""Tests for the Maple analog: profiling, active scheduling, recording."""

import pytest

from repro.lang import compile_source
from repro.maple import (
    ActiveScheduler,
    ActiveSchedulerWatch,
    InterleavingProfiler,
    IRoot,
    MemAccess,
    expose_and_record,
)
from repro.pinplay import replay
from repro.vm import Machine

# A lost-update atomicity bug that round-robin schedules never expose:
# both increments must interleave at instruction granularity.
ATOMICITY_BUG = """
int x;
int bump(int unused) {
    x = x + 1;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 0);
    b = spawn(bump, 0);
    join(a);
    join(b);
    assert(x == 2, 11);
    return 0;
}
"""

# An order-violation bug: the producer publishes the ready flag *before*
# initializing the data it guards, so a consumer that wins the race reads
# uninitialized data.
ORDER_BUG = """
int data; int ready;
int producer(int unused) {
    ready = 1;
    data = 42;
    return 0;
}
int consumer(int unused) {
    while (ready == 0) { yield(); }
    assert(data == 42, 21);
    return 0;
}
int main() {
    int c; int p;
    c = spawn(consumer, 0);
    p = spawn(producer, 0);
    join(c);
    join(p);
    return 0;
}
"""


class TestIRoots:
    def test_conflicts(self):
        write = MemAccess(pc=1, is_write=True)
        read = MemAccess(pc=2, is_write=False)
        assert IRoot(write, read).conflicts()
        assert IRoot(read, write).conflicts()
        assert not IRoot(read, read).conflicts()

    def test_reversed(self):
        a, b = MemAccess(1, True), MemAccess(2, False)
        assert IRoot(a, b).reversed() == IRoot(b, a)

    def test_describe_with_program(self):
        program = compile_source(ATOMICITY_BUG)
        access = MemAccess(program.functions["bump"].entry, True)
        text = access.describe(program)
        assert "bump" in text


class TestProfiler:
    def test_observes_conflicting_pairs(self):
        program = compile_source(ATOMICITY_BUG)
        profiler = InterleavingProfiler(program)
        observed = profiler.run(seeds=range(3))
        assert observed
        assert all(root.conflicts() for root in observed)

    def test_predictions_are_unobserved_reversals(self):
        program = compile_source(ATOMICITY_BUG)
        profiler = InterleavingProfiler(program)
        observed = profiler.run(seeds=range(3))
        for predicted in profiler.predicted():
            assert predicted.reversed() in observed
            assert predicted not in observed

    def test_globals_only_filter(self):
        program = compile_source(ATOMICITY_BUG)
        limited = InterleavingProfiler(program, globals_only=True)
        limited.run(seeds=range(2))
        for root in limited.observed:
            # All access sites touch code; just confirm the pcs are valid.
            assert 0 <= root.first.pc < len(program.instructions)


class TestActiveScheduler:
    def test_forced_ordering_exposes_order_violation(self):
        program = compile_source(ORDER_BUG)
        profiler = InterleavingProfiler(program)
        profiler.run(seeds=range(3))
        candidates = profiler.predicted()
        assert candidates, "profiler predicted nothing to force"
        exposed = False
        for iroot in candidates:
            watch = ActiveSchedulerWatch(iroot)
            scheduler = ActiveScheduler(watch, give_up_budget=5_000)
            machine = Machine(program, scheduler=scheduler, tools=[watch])
            machine.run(max_steps=100_000)
            # Success: either the full iRoot was realized, or forcing its
            # first access already tripped the symptom (the failure stops
            # the run before the held second access can retire).
            if watch.realized or (machine.failure is not None
                                  and watch.first_done_by is not None):
                exposed = True
        assert exposed

    def test_gives_up_rather_than_livelock(self):
        program = compile_source(ATOMICITY_BUG)
        # An impossible iroot: second access in code that runs before any
        # other thread exists would starve without the give-up budget.
        iroot = IRoot(MemAccess(pc=10_000, is_write=True),
                      MemAccess(pc=program.functions["main"].entry,
                                is_write=False))
        watch = ActiveSchedulerWatch(iroot)
        scheduler = ActiveScheduler(watch, give_up_budget=50)
        machine = Machine(program, scheduler=scheduler, tools=[watch])
        result = machine.run(max_steps=100_000)
        assert machine.finished or result.reason in ("exit", "done")


class TestExposeAndRecord:
    def test_atomicity_bug_exposed_and_replayable(self):
        program = compile_source(ATOMICITY_BUG)
        result = expose_and_record(program, profile_seeds=range(3),
                                   max_active_runs=40)
        assert result.exposed
        machine, run = replay(result.pinball, program)
        assert run.failure is not None
        assert run.failure["code"] == 11

    def test_result_metadata(self):
        program = compile_source(ATOMICITY_BUG)
        result = expose_and_record(program, profile_seeds=range(3),
                                   max_active_runs=40)
        assert result.exposed_by in ("profiling", "active")
        if result.exposed_by == "active":
            assert result.iroot is not None
            assert result.active_runs >= 1

    def test_bug_free_program_not_exposed(self):
        source = """
int x; int m;
int bump(int unused) {
    lock(&m);
    x = x + 1;
    unlock(&m);
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 0);
    b = spawn(bump, 0);
    join(a); join(b);
    assert(x == 2, 11);
    return 0;
}
"""
        program = compile_source(source)
        result = expose_and_record(program, profile_seeds=range(2),
                                   max_active_runs=20)
        assert not result.exposed
        assert result.pinball is None
