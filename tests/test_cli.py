"""Tests for the ``python -m repro`` command-line interface."""

import json
import os

import pytest

from repro.cli import main

RACY_SOURCE = """
int x;
int bump(int unused) {
    x = x + 1;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 0);
    b = spawn(bump, 0);
    join(a);
    join(b);
    print(x);
    assert(x == 2, 9);
    return 0;
}
"""

CLEAN_SOURCE = """
int main() {
    int i; int s;
    s = 0;
    for (i = 1; i <= 10; i = i + 1) { s = s + i; }
    print(s);
    return 0;
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.mc"
    path.write_text(RACY_SOURCE)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mc"
    path.write_text(CLEAN_SOURCE)
    return str(path)


@pytest.fixture
def racy_pinball(racy_file, tmp_path):
    out = str(tmp_path / "racy.pinball")
    code = main(["record", racy_file, "-o", out, "--expose", "64",
                 "--switch-prob", "0.3"])
    assert code == 0
    return out


class TestRun:
    def test_clean_program(self, clean_file, capsys):
        assert main(["run", clean_file]) == 0
        assert "55" in capsys.readouterr().out

    def test_failing_program_exit_code(self, racy_file):
        # Round-robin never loses the update: passes.
        assert main(["run", racy_file]) == 0

    def test_inputs_flag(self, tmp_path, capsys):
        path = tmp_path / "in.mc"
        path.write_text("int main() { print(input() + input()); return 0; }")
        assert main(["run", str(path), "--inputs", "4,5"]) == 0
        assert "9" in capsys.readouterr().out

    def test_compile_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.mc"
        path.write_text("int main() { this is not minic }")
        assert main(["run", str(path)]) == 64


class TestRecordReplay:
    def test_record_and_replay_roundtrip(self, clean_file, tmp_path, capsys):
        out = str(tmp_path / "clean.pinball")
        assert main(["record", clean_file, "-o", out]) == 0
        assert os.path.exists(out)
        capsys.readouterr()
        assert main(["replay", clean_file, out]) == 0
        assert "55" in capsys.readouterr().out

    def test_expose_records_failure(self, racy_pinball, racy_file, capsys):
        capsys.readouterr()
        code = main(["replay", racy_file, racy_pinball])
        assert code == 1            # failure reproduced
        assert "failure" in capsys.readouterr().err

    def test_expose_gives_up_on_clean_program(self, clean_file, tmp_path):
        out = str(tmp_path / "never.pinball")
        assert main(["record", clean_file, "-o", out, "--expose", "3"]) == 1

    def test_maple_expose(self, racy_file, tmp_path, capsys):
        out = str(tmp_path / "maple.pinball")
        code = main(["record", racy_file, "-o", out,
                     "--expose", "40", "--maple"])
        assert code == 0
        err = capsys.readouterr().err
        assert "exposed by" in err

    def test_region_flags(self, clean_file, tmp_path, capsys):
        out = str(tmp_path / "region.pinball")
        assert main(["record", clean_file, "-o", out,
                     "--skip", "10", "--length", "20"]) == 0
        assert "20 instructions" in capsys.readouterr().out


class TestSlice:
    def test_failure_slice(self, racy_file, racy_pinball, capsys):
        capsys.readouterr()
        assert main(["slice", racy_file, racy_pinball]) == 0
        out = capsys.readouterr().out
        assert "slice:" in out
        assert "bump:" in out       # the racy increment is in the slice

    def test_variable_slice_with_outputs(self, racy_file, racy_pinball,
                                         tmp_path, capsys):
        slice_json = str(tmp_path / "x.slice.json")
        slice_pb = str(tmp_path / "x.slice.pinball")
        assert main(["slice", racy_file, racy_pinball, "--var", "x",
                     "-o", slice_json, "--slice-pinball", slice_pb]) == 0
        assert os.path.exists(slice_json)
        assert os.path.exists(slice_pb)
        payload = json.load(open(slice_json))
        assert payload["nodes"]

    def test_unknown_variable(self, racy_file, racy_pinball):
        assert main(["slice", racy_file, racy_pinball,
                     "--var", "nope"]) == 65


class TestDual:
    def test_dual_diff_of_input_dependent_bug(self, tmp_path, capsys):
        source = """
int out; int bias;
int main() {
    int c;
    c = input();
    bias = 10;
    if (c) { out = bias - 10; } else { out = bias + 10; }
    assert(out > 0, 5);
    return 0;
}
"""
        path = tmp_path / "branchy.mc"
        path.write_text(source)
        failing = str(tmp_path / "fail.pb")
        passing = str(tmp_path / "pass.pb")
        main(["record", str(path), "-o", failing, "--inputs", "1"])
        main(["record", str(path), "-o", passing, "--inputs", "0"])
        capsys.readouterr()
        assert main(["dual", str(path), failing, passing,
                     "--var", "out"]) == 0
        out = capsys.readouterr().out
        assert "FAILING" in out
        assert "main:7" in out


class TestRaces:
    def test_racy_program_reports(self, racy_file, racy_pinball, capsys):
        capsys.readouterr()
        assert main(["races", racy_file, racy_pinball]) == 2
        out = capsys.readouterr().out
        assert "race on x" in out

    def test_clean_program_silent(self, clean_file, tmp_path, capsys):
        out = str(tmp_path / "clean.pinball")
        main(["record", clean_file, "-o", out])
        capsys.readouterr()
        assert main(["races", clean_file, out]) == 0

    def test_json_is_the_report_schema(self, racy_file, racy_pinball,
                                       capsys):
        capsys.readouterr()
        assert main(["races", racy_file, racy_pinball, "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        from repro.analysis.report import validate_report
        validate_report(payload)
        assert payload["kind"] == "races"
        assert payload["race_count"] == payload["finding_count"]


#: Exit-code contract for the analysis verbs: 2 exactly when the
#: analysis found something, 0 otherwise — identical for the local
#: commands and (tests/serve/test_cli_serve.py) the client verbs.
ANALYSIS_EXIT_TABLE = [
    ("races-racy", ["races"], "racy", 2),
    ("races-clean", ["races"], "clean", 0),
    ("hunt-racy", ["hunt", "--budget", "4", "--profile-seeds", "2",
                   "--minimize-budget", "6"], "racy", 2),
    ("hunt-clean", ["hunt", "--budget", "3", "--profile-seeds", "2",
                    "--minimize-budget", "6"], "clean", 0),
]


class TestAnalysisExitCodes:
    @pytest.mark.parametrize(
        "verb_args,which,expected",
        [row[1:] for row in ANALYSIS_EXIT_TABLE],
        ids=[row[0] for row in ANALYSIS_EXIT_TABLE])
    def test_exit_code(self, racy_file, racy_pinball, clean_file,
                       tmp_path, capsys, verb_args, which, expected):
        if which == "racy":
            program, pinball = racy_file, racy_pinball
        else:
            program = clean_file
            pinball = str(tmp_path / "clean.pinball")
            assert main(["record", clean_file, "-o", pinball]) == 0
        capsys.readouterr()
        assert main(verb_args + [program, pinball]) == expected


class TestHunt:
    def test_confirms_and_minimizes_the_racy_bug(self, racy_file,
                                                 racy_pinball, tmp_path,
                                                 capsys):
        out_dir = str(tmp_path / "mins")
        capsys.readouterr()
        code = main(["hunt", racy_file, racy_pinball, "--budget", "4",
                     "--profile-seeds", "2", "--minimize-budget", "8",
                     "--out-dir", out_dir, "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        from repro.analysis.report import validate_report
        validate_report(payload)
        assert payload["kind"] == "hunt"
        crash = [f for f in payload["findings"]
                 if f["outcome"] == "crash"][0]
        assert crash["failure_code"] == 9
        assert os.path.exists(crash["minimized_path"])
        # The minimized pinball replays to the same failure.
        capsys.readouterr()
        assert main(["replay", racy_file, crash["minimized_path"]]) == 1
        # The pre-sliced report reaches the racing increment.
        assert crash["slice"]["instance_count"] > 0

    def test_human_output_names_outcome(self, racy_file, racy_pinball,
                                        capsys):
        capsys.readouterr()
        assert main(["hunt", racy_file, racy_pinball, "--budget", "4",
                     "--profile-seeds", "2",
                     "--minimize-budget", "6"]) == 2
        out = capsys.readouterr().out
        assert "crash via" in out


class TestDebug:
    def test_scripted_session(self, racy_file, racy_pinball, capsys):
        capsys.readouterr()
        code = main(["debug", racy_file, racy_pinball,
                     "-x", "break bump", "-x", "run", "-x", "print x",
                     "-x", "info threads"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hit breakpoint" in out
        assert "x = " in out

    def test_scripted_reverse_session(self, racy_file, racy_pinball,
                                      capsys):
        capsys.readouterr()
        code = main(["debug", racy_file, racy_pinball, "--reverse",
                     "--checkpoint-interval", "16",
                     "-x", "run", "-x", "rsi 5", "-x", "where"])
        assert code == 0
        assert "backwards" in capsys.readouterr().out

    def test_quit_command_ends_script(self, racy_file, racy_pinball):
        assert main(["debug", racy_file, racy_pinball,
                     "-x", "quit", "-x", "run"]) == 0


class TestDisasm:
    def test_whole_program(self, clean_file, capsys):
        assert main(["disasm", clean_file]) == 0
        out = capsys.readouterr().out
        assert "func main" in out

    def test_single_function(self, racy_file, capsys):
        assert main(["disasm", racy_file, "--function", "bump"]) == 0
        out = capsys.readouterr().out
        assert "func bump" in out
        assert "func main" not in out


class TestObs:
    @pytest.fixture(autouse=True)
    def _restore_registry(self):
        from repro.obs import OBS
        saved = OBS.enabled
        yield
        OBS.enabled = saved
        OBS.reset()

    def test_obs_report_no_demo_on_empty_registry(self, capsys):
        from repro.obs import OBS
        OBS.disable()
        OBS.reset()
        assert main(["obs", "report", "--no-demo"]) == 0
        captured = capsys.readouterr()
        assert "observability report" in captured.out
        assert "REPRO_OBS=1" in captured.out     # the enable hint
        assert "layer totals" in captured.err

    def test_obs_unknown_action(self, capsys):
        assert main(["obs", "bogus"]) == 2
        assert "unknown obs action" in capsys.readouterr().err

    def test_obs_report_demo_cycle_covers_all_layers(self, tmp_path,
                                                     capsys):
        out_json = str(tmp_path / "obs.json")
        assert main(["obs", "report", "--json", out_json]) == 0
        captured = capsys.readouterr()
        for layer in ("vm", "pinplay", "slicing", "debugger", "maple"):
            assert "[%s]" % layer in captured.out
        with open(out_json) as handle:
            data = json.load(handle)
        assert data["counters"]["vm.instructions_retired"] > 0

    def test_global_obs_flag_exports_snapshot(self, clean_file, tmp_path,
                                              capsys):
        out_json = str(tmp_path / "run_obs.json")
        assert main(["--obs", "--obs-json", out_json, "run",
                     clean_file]) == 0
        with open(out_json) as handle:
            data = json.load(handle)
        assert data["counters"]["vm.instructions_retired"] > 0
        assert "snapshot written" in capsys.readouterr().err

    def test_global_obs_flag_prints_report_to_stderr(self, clean_file,
                                                     capsys):
        assert main(["--obs", "run", clean_file]) == 0
        captured = capsys.readouterr()
        assert "observability report" in captured.err
        assert "vm.instructions_retired" in captured.err
        assert "55" in captured.out              # program output unpolluted


class TestRecordFormats:
    def test_record_v2_writes_streamed_container(self, clean_file,
                                                 tmp_path, capsys):
        out = str(tmp_path / "clean.v2.pinball")
        assert main(["record", clean_file, "-o", out,
                     "--format", "v2"]) == 0
        with open(out, "rb") as handle:
            assert handle.read(4) == b"RPB2"
        capsys.readouterr()
        assert main(["replay", clean_file, out]) == 0
        assert "55" in capsys.readouterr().out

    def test_format_env_knob(self, clean_file, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PINBALL_FORMAT", "v2")
        out = str(tmp_path / "env.pinball")
        assert main(["record", clean_file, "-o", out]) == 0
        with open(out, "rb") as handle:
            assert handle.read(4) == b"RPB2"


class TestConvert:
    def test_v1_to_v2_embeds_checkpoints(self, clean_file, tmp_path,
                                         capsys):
        v1 = str(tmp_path / "clean.pinball")
        # Pin the source format: under the REPRO_PINBALL_FORMAT=v2 CI
        # rider an unpinned record would already be v2.
        assert main(["record", clean_file, "-o", v1,
                     "--format", "v1"]) == 0
        v2 = str(tmp_path / "clean.v2.pinball")
        capsys.readouterr()
        assert main(["convert", v1, "-o", v2, "--program", clean_file,
                     "--checkpoint-interval", "16"]) == 0
        out = capsys.readouterr().out
        assert "v1 -> v2" in out
        with open(v2, "rb") as handle:
            assert handle.read(4) == b"RPB2"
        from repro.pinplay import Pinball
        converted = Pinball.load(v2)
        assert converted.checkpoints
        assert all(c.steps_done % 16 == 0 for c in converted.checkpoints)
        capsys.readouterr()
        assert main(["replay", clean_file, v2]) == 0
        assert "55" in capsys.readouterr().out

    def test_v2_back_to_v1_roundtrip(self, clean_file, tmp_path, capsys):
        v2 = str(tmp_path / "c.v2.pinball")
        assert main(["record", clean_file, "-o", v2, "--format",
                     "v2"]) == 0
        v1 = str(tmp_path / "c.v1.pinball")
        capsys.readouterr()
        # Default target: the opposite of the source format.
        assert main(["convert", v2, "-o", v1]) == 0
        assert "v2 -> v1" in capsys.readouterr().out
        with open(v1, "rb") as handle:
            assert handle.read(4) != b"RPB2"
        capsys.readouterr()
        assert main(["replay", clean_file, v1]) == 0
        assert "55" in capsys.readouterr().out

    def test_convert_corrupt_input_exits_65(self, tmp_path, capsys):
        bad = tmp_path / "bad.pinball"
        bad.write_bytes(b"not a pinball at all")
        out = str(tmp_path / "out.pinball")
        assert main(["convert", str(bad), "-o", out]) == 65
        assert "bad.pinball" in capsys.readouterr().err

    @pytest.mark.parametrize("interval", ("0", "-5"))
    def test_convert_rejects_nonpositive_interval(self, tmp_path, capsys,
                                                  interval):
        # Usage error (64) before the input is even opened: the missing
        # pinball must not be the failure reported.
        missing = str(tmp_path / "never-read.pinball")
        out = str(tmp_path / "out.pinball")
        assert main(["convert", missing, "-o", out,
                     "--checkpoint-interval", interval]) == 64
        err = capsys.readouterr().err
        assert "--checkpoint-interval" in err
        assert interval in err
        assert not os.path.exists(out)

    @pytest.mark.parametrize("interval", ("0", "-3"))
    def test_record_rejects_nonpositive_interval(self, tmp_path, capsys,
                                                 interval):
        missing = str(tmp_path / "never-read.mc")
        out = str(tmp_path / "out.pinball")
        assert main(["record", missing, "-o", out,
                     "--checkpoint-interval", interval]) == 64
        err = capsys.readouterr().err
        assert "--checkpoint-interval" in err
        assert not os.path.exists(out)


class TestCorruptPinball:
    def test_corrupt_pinball_exits_65_and_names_file(self, clean_file,
                                                     tmp_path, capsys):
        path = tmp_path / "bad.pinball"
        path.write_bytes(b"definitely not a pinball")
        assert main(["replay", clean_file, str(path)]) == 65
        err = capsys.readouterr().err
        assert "not a pinball" in err
        assert "bad.pinball" in err

    def test_truncated_pinball_exits_65(self, clean_file, tmp_path,
                                        capsys, racy_pinball):
        with open(racy_pinball, "rb") as handle:
            blob = handle.read()
        path = tmp_path / "trunc.pinball"
        path.write_bytes(blob[: len(blob) // 2])
        assert main(["replay", clean_file, str(path)]) == 65
        err = capsys.readouterr().err
        # v1 blobs fail the JSON parse; truncated v2 containers are
        # diagnosed per frame ("truncated payload"/"truncated frame
        # header" + byte offset).  Either way: exit 65, path named.
        assert "not a pinball" in err or "truncated" in err
        assert "trunc.pinball" in err
