"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler


def run_minic(source: str, scheduler=None, inputs=(), rand_seed=0,
              max_steps=2_000_000, name="test"):
    """Compile and run a MiniC program; returns the finished machine."""
    program = compile_source(source, name=name)
    machine = Machine(program, scheduler=scheduler or RoundRobinScheduler(),
                      inputs=inputs, rand_seed=rand_seed)
    machine.run(max_steps=max_steps)
    return machine


def run_and_output(source: str, **kwargs):
    """Compile, run, and return the output list."""
    return run_minic(source, **kwargs).output


#: The paper's Figure 5 analog: T2 assumes an atomic region, T1 races on x.
FIG5_SOURCE = r"""
int x; int y; int z;

int thread1(int unused) {
    z = 1;
    x = z + 1;
    y = x + 1;
    return 0;
}

int thread2(int unused) {
    int k;
    k = 5;
    k = k + x;
    assert(k == 5, 13);
    return 0;
}

int main() {
    int a; int b;
    a = spawn(thread1, 0);
    b = spawn(thread2, 0);
    join(a);
    join(b);
    return 0;
}
"""


def expose_failure(source: str, seeds=range(64), switch_prob=0.4,
                   region=None, name="buggy"):
    """Find a seed whose schedule trips the program's assert; record it."""
    program = compile_source(source, name=name)
    for seed in seeds:
        pinball = record_region(
            program, RandomScheduler(seed=seed, switch_prob=switch_prob),
            region or RegionSpec())
        if pinball.meta.get("failure"):
            return program, pinball, seed
    raise AssertionError("no seed exposed the failure")


@pytest.fixture(scope="session")
def fig5():
    """(program, failing pinball, seed) for the Figure 5 race."""
    return expose_failure(FIG5_SOURCE, name="fig5")
