"""Disassembler round-trip and formatting tests."""

from repro.isa import assemble, disassemble, format_instr
from repro.isa.instructions import Imm, Instr, Opcode, Reg

SOURCE = """
.global counter 1
.data jt = main

func helper(a)
  push fp
  mov fp, sp
  ld r0, [fp+2]
  add r0, r0, 1 @5
  mov sp, fp
  pop fp
  ret

func main
  mov r0, 41
  push r0
  call helper
  add sp, sp, 1
  sys print
  halt
"""


class TestDisassemble:
    def test_contains_all_functions(self):
        text = disassemble(assemble(SOURCE))
        assert "func helper(a)" in text
        assert "func main" in text

    def test_contains_globals_and_data(self):
        text = disassemble(assemble(SOURCE))
        assert ".global counter 1" in text
        assert ".data jt" in text

    def test_single_function_filter(self):
        text = disassemble(assemble(SOURCE), "main")
        assert "func main" in text
        assert "func helper" not in text

    def test_line_annotations_present(self):
        text = disassemble(assemble(SOURCE))
        assert "; line 5" in text

    def test_addresses_in_margin(self):
        program = assemble(SOURCE)
        text = disassemble(program)
        entry = program.functions["main"].entry
        assert "%4d: " % entry in text


class TestFormatInstr:
    def test_basic(self):
        instr = Instr(Opcode.MOV, (Reg("r0"), Imm(5)), addr=12)
        assert format_instr(instr) == "  12: mov r0, 5"

    def test_without_addr(self):
        instr = Instr(Opcode.HALT, ())
        assert format_instr(instr, with_addr=False) == "halt"

    def test_with_line(self):
        instr = Instr(Opcode.NOP, (), line=3, addr=0)
        assert "; line 3" in format_instr(instr)

    def test_with_comment(self):
        instr = Instr(Opcode.NOP, (), comment="spill", addr=0)
        assert "# spill" in format_instr(instr)
