"""Unit tests for instruction and operand definitions."""

import pytest

from repro.isa.instructions import (
    BINARY_OPS,
    COMPARE_OPS,
    Imm,
    Instr,
    Label,
    Mem,
    Opcode,
    Reg,
    UNARY_OPS,
)


class TestOperands:
    def test_reg_valid(self):
        assert Reg("r0").name == "r0"
        assert Reg("sp").name == "sp"
        assert Reg("fp").name == "fp"

    def test_reg_invalid(self):
        with pytest.raises(ValueError):
            Reg("r9")
        with pytest.raises(ValueError):
            Reg("eax")

    def test_imm_str(self):
        assert str(Imm(5)) == "5"
        assert str(Imm(-3)) == "-3"
        assert str(Imm(1.5)) == "1.5"

    def test_mem_str(self):
        assert str(Mem(Reg("fp"), 2)) == "[fp+2]"
        assert str(Mem(Reg("fp"), -1)) == "[fp-1]"
        assert str(Mem(Reg("sp"))) == "[sp]"

    def test_label_str(self):
        assert str(Label("loop")) == "loop"


class TestInstrValidation:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instr("frobnicate")

    def test_binop_requires_valid_subop(self):
        with pytest.raises(ValueError):
            Instr(Opcode.BINOP, (Reg("r0"), Reg("r0"), Imm(1)), subop="pow")
        instr = Instr(Opcode.BINOP, (Reg("r0"), Reg("r0"), Imm(1)),
                      subop="add")
        assert instr.subop == "add"

    def test_unop_requires_valid_subop(self):
        with pytest.raises(ValueError):
            Instr(Opcode.UNOP, (Reg("r0"), Reg("r0")), subop="sqrt")

    def test_sys_requires_name(self):
        with pytest.raises(ValueError):
            Instr(Opcode.SYS)
        assert Instr(Opcode.SYS, subop="print").subop == "print"

    def test_all_binary_ops_accepted(self):
        for subop in BINARY_OPS:
            Instr(Opcode.BINOP, (Reg("r0"), Reg("r1"), Imm(2)), subop=subop)

    def test_all_unary_ops_accepted(self):
        for subop in UNARY_OPS:
            Instr(Opcode.UNOP, (Reg("r0"), Reg("r1")), subop=subop)

    def test_compare_ops_subset_of_binary(self):
        assert set(COMPARE_OPS) <= set(BINARY_OPS)


class TestRegDefsUses:
    def test_mov_reg(self):
        instr = Instr(Opcode.MOV, (Reg("r1"), Reg("r2")))
        assert instr.reg_defs() == ("r1",)
        assert instr.reg_uses() == ("r2",)

    def test_mov_imm_has_no_uses(self):
        instr = Instr(Opcode.MOV, (Reg("r1"), Imm(5)))
        assert instr.reg_uses() == ()

    def test_ld_uses_base(self):
        instr = Instr(Opcode.LD, (Reg("r0"), Mem(Reg("fp"), -1)))
        assert instr.reg_defs() == ("r0",)
        assert instr.reg_uses() == ("fp",)

    def test_st_uses_base_and_source(self):
        instr = Instr(Opcode.ST, (Mem(Reg("fp"), -1), Reg("r3")))
        assert instr.reg_defs() == ()
        assert set(instr.reg_uses()) == {"fp", "r3"}

    def test_binop_defs_and_uses(self):
        instr = Instr(Opcode.BINOP, (Reg("r0"), Reg("r1"), Reg("r2")),
                      subop="add")
        assert instr.reg_defs() == ("r0",)
        assert set(instr.reg_uses()) == {"r1", "r2"}

    def test_binop_dedupes_uses(self):
        instr = Instr(Opcode.BINOP, (Reg("r0"), Reg("r1"), Reg("r1")),
                      subop="add")
        assert instr.reg_uses() == ("r1",)

    def test_push_defs_sp(self):
        instr = Instr(Opcode.PUSH, (Reg("r4"),))
        assert instr.reg_defs() == ("sp",)
        assert set(instr.reg_uses()) == {"r4", "sp"}

    def test_pop_defs_target_and_sp(self):
        instr = Instr(Opcode.POP, (Reg("r4"),))
        assert set(instr.reg_defs()) == {"r4", "sp"}
        assert instr.reg_uses() == ("sp",)

    def test_branch_uses_condition(self):
        instr = Instr(Opcode.BR, (Reg("r2"), Imm(7)))
        assert instr.reg_uses() == ("r2",)
        assert instr.reg_defs() == ()

    def test_call_touches_sp(self):
        instr = Instr(Opcode.CALL, (Imm(3),))
        assert instr.reg_defs() == ("sp",)
        assert instr.reg_uses() == ("sp",)


class TestClassification:
    def test_branches(self):
        assert Instr(Opcode.BR, (Reg("r0"), Imm(1))).is_branch()
        assert Instr(Opcode.BRZ, (Reg("r0"), Imm(1))).is_branch()
        assert not Instr(Opcode.JMP, (Imm(1),)).is_branch()

    def test_indirect_jump(self):
        assert Instr(Opcode.IJMP, (Reg("r0"),)).is_indirect_jump()

    def test_control_transfers(self):
        for op, operands in [
            (Opcode.JMP, (Imm(1),)),
            (Opcode.BR, (Reg("r0"), Imm(1))),
            (Opcode.IJMP, (Reg("r0"),)),
            (Opcode.CALL, (Imm(1),)),
            (Opcode.RET, ()),
            (Opcode.HALT, ()),
        ]:
            assert Instr(op, operands).is_control_transfer()
        assert not Instr(Opcode.MOV, (Reg("r0"), Imm(1))).is_control_transfer()

    def test_branch_target_label(self):
        instr = Instr(Opcode.BR, (Reg("r0"), Label("loop")))
        assert instr.branch_target() == "loop"
        instr = Instr(Opcode.JMP, (Label("end"),))
        assert instr.branch_target() == "end"
        assert Instr(Opcode.RET).branch_target() is None

    def test_str_forms(self):
        assert str(Instr(Opcode.MOV, (Reg("r0"), Imm(5)))) == "mov r0, 5"
        assert str(Instr(Opcode.BINOP, (Reg("r0"), Reg("r1"), Imm(2)),
                         subop="add")) == "add r0, r1, 2"
        assert str(Instr(Opcode.SYS, subop="print")) == "sys print"
