"""Unit tests for the Program container: linking, symbols, debug info."""

import pytest

from repro.isa.instructions import Imm, Instr, Label, Opcode, Reg
from repro.isa.program import (
    DataDef,
    Function,
    GLOBAL_BASE,
    GlobalVar,
    LinkError,
    Program,
)


def make_simple_program():
    program = Program("demo")
    main = Function("main", instrs=[
        Instr(Opcode.MOV, (Reg("r0"), Imm(1)), line=10),
        Instr(Opcode.CALL, (Label("helper"),), line=11),
        Instr(Opcode.HALT, (), line=12),
    ])
    helper = Function("helper", instrs=[
        Instr(Opcode.RET, (), line=20),
    ])
    program.add_function(main)
    program.add_function(helper)
    program.add_global(GlobalVar("g", size=2, init=[7, 8]))
    return program


class TestLinking:
    def test_addresses_assigned_in_order(self):
        program = make_simple_program().link()
        assert [i.addr for i in program.instructions] == [0, 1, 2, 3]
        assert program.functions["main"].entry == 0
        assert program.functions["helper"].entry == 3

    def test_call_label_resolved(self):
        program = make_simple_program().link()
        call = program.instructions[1]
        assert isinstance(call.operands[0], Imm)
        assert call.operands[0].value == 3

    def test_func_attribute_set(self):
        program = make_simple_program().link()
        assert program.instructions[0].func == "main"
        assert program.instructions[3].func == "helper"

    def test_globals_after_reserved_base(self):
        program = make_simple_program().link()
        assert program.globals["g"].addr == GLOBAL_BASE
        assert program.data_size == GLOBAL_BASE + 2

    def test_initial_data_image(self):
        program = make_simple_program().link()
        image = program.initial_data_image()
        assert image[GLOBAL_BASE] == 7
        assert image[GLOBAL_BASE + 1] == 8

    def test_double_link_rejected(self):
        program = make_simple_program().link()
        with pytest.raises(LinkError):
            program.link()

    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(Function("f"))
        with pytest.raises(LinkError):
            program.add_function(Function("f"))

    def test_duplicate_global_rejected(self):
        program = Program()
        program.add_global(GlobalVar("g"))
        with pytest.raises(LinkError):
            program.add_global(GlobalVar("g"))

    def test_unresolved_label_raises(self):
        program = Program()
        program.add_function(Function("main", instrs=[
            Instr(Opcode.JMP, (Label("nowhere"),)),
        ]))
        with pytest.raises(LinkError):
            program.link()

    def test_local_labels_scoped_per_function(self):
        program = Program()
        program.add_function(Function("main", instrs=[
            Instr(Opcode.JMP, (Label("l"),)),
            Instr(Opcode.HALT, ()),
        ]))
        program.add_function(Function("other", instrs=[
            Instr(Opcode.JMP, (Label("l"),)),
            Instr(Opcode.RET, ()),
        ]))
        program.link({"main": {"l": 1}, "other": {"l": 1}})
        assert program.instructions[0].operands[0].value == 1
        assert program.instructions[2].operands[0].value == 3

    def test_data_def_labels_resolved_in_image(self):
        program = Program()
        program.add_function(Function("main", instrs=[
            Instr(Opcode.HALT, ()),
        ]))
        program.add_data(DataDef("jt", values=[Label("main")]))
        program.link()
        image = program.initial_data_image()
        # main is at code address 0, stored values of 0 are omitted.
        assert image.get(program.data_defs["jt"].addr, 0) == 0


class TestQueries:
    def test_function_at(self):
        program = make_simple_program().link()
        assert program.function_at(0).name == "main"
        assert program.function_at(3).name == "helper"
        assert program.function_at(99) is None

    def test_line_of(self):
        program = make_simple_program().link()
        assert program.line_of(0) == 10
        assert program.line_of(3) == 20
        assert program.line_of(99) is None

    def test_addresses_of_line(self):
        program = make_simple_program().link()
        assert program.addresses_of_line(11) == [1]
        assert program.addresses_of_line(11, "helper") == []

    def test_resolve_symbol_order(self):
        program = make_simple_program().link()
        assert program.resolve_symbol("main") == 0
        assert program.resolve_symbol("g") == GLOBAL_BASE
        assert program.resolve_symbol("nope") is None

    def test_function_contains(self):
        program = make_simple_program().link()
        main = program.functions["main"]
        assert main.contains(0) and main.contains(2)
        assert not main.contains(3)
