"""Unit tests for the textual assembler."""

import pytest

from repro.isa import AsmError, assemble
from repro.isa.instructions import Imm, Mem, Opcode, Reg
from repro.vm import Machine


def asm_run(source, **kwargs):
    machine = Machine(assemble(source), **kwargs)
    machine.run(max_steps=100_000)
    return machine


class TestParsing:
    def test_minimal_program(self):
        program = assemble("func main\n  halt\n")
        assert len(program) == 1
        assert program.instructions[0].op == Opcode.HALT

    def test_globals_layout(self):
        program = assemble("""
.global a 1
.global b 3
func main
  halt
""")
        assert program.globals["b"].addr == program.globals["a"].addr + 1
        assert program.globals["b"].size == 3

    def test_global_with_init(self):
        program = assemble("""
.global tbl 3 = 5 6 7
func main
  halt
""")
        image = program.initial_data_image()
        base = program.globals["tbl"].addr
        assert [image[base + i] for i in range(3)] == [5, 6, 7]

    def test_data_with_labels(self):
        program = assemble("""
.data jt = c0 c1
func main
c0:
  nop
c1:
  halt
""")
        image = program.initial_data_image()
        base = program.data_defs["jt"].addr
        # c0 is address 0 (stored as 0 -> omitted from the sparse image).
        assert image.get(base, 0) == 0
        assert image[base + 1] == 1

    def test_labels_resolve_within_function(self):
        program = assemble("""
func main
  mov r0, 3
loop:
  sub r0, r0, 1
  br r0, loop
  halt
""")
        br = program.instructions[2]
        assert isinstance(br.operands[1], Imm)
        assert br.operands[1].value == 1

    def test_memory_operands(self):
        program = assemble("""
func main
  ld r0, [fp+2]
  st [fp-1], r0
  ld r1, [sp]
  halt
""")
        ld = program.instructions[0]
        assert ld.operands[1] == Mem(Reg("fp"), 2)
        st = program.instructions[1]
        assert st.operands[0] == Mem(Reg("fp"), -1)

    def test_line_tags(self):
        program = assemble("""
func main
  mov r0, 1 @42
  halt
""")
        assert program.instructions[0].line == 42

    def test_comments_stripped(self):
        program = assemble("""
; leading comment
func main
  mov r0, 1   ; trailing
  halt        # hash comment
""")
        assert len(program) == 2

    def test_function_params_recorded(self):
        program = assemble("""
func helper(a, b)
  ret
func main
  halt
""")
        assert program.functions["helper"].params == ["a", "b"]

    def test_float_immediates(self):
        program = assemble("""
func main
  mov r0, 1.5
  halt
""")
        assert program.instructions[0].operands[1].value == 1.5

    def test_negative_immediates(self):
        program = assemble("""
func main
  mov r0, -7
  halt
""")
        assert program.instructions[0].operands[1].value == -7


class TestErrors:
    def test_instruction_outside_function(self):
        with pytest.raises(AsmError):
            assemble("mov r0, 1\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble("func main\n  xyzzy r0\n")

    def test_bad_arity(self):
        with pytest.raises(AsmError):
            assemble("func main\n  mov r0\n")
        with pytest.raises(AsmError):
            assemble("func main\n  add r0, r1\n")

    def test_missing_entry(self):
        with pytest.raises(AsmError):
            assemble("func helper\n  ret\n")

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble("func main\nx:\nx:\n  halt\n")

    def test_unresolved_symbol(self):
        with pytest.raises(Exception):
            assemble("func main\n  jmp nowhere\n  halt\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as excinfo:
            assemble("func main\n  bogus r0\n")
        assert "line 2" in str(excinfo.value)


class TestExecution:
    def test_arithmetic(self):
        machine = asm_run("""
func main
  mov r0, 10
  mul r0, r0, 3
  sub r0, r0, 5
  sys print
  halt
""")
        assert machine.output == [25]

    def test_loop(self):
        machine = asm_run("""
func main
  mov r0, 0
  mov r1, 5
loop:
  add r0, r0, r1
  sub r1, r1, 1
  br r1, loop
  sys print
  halt
""")
        assert machine.output == [15]

    def test_call_ret(self):
        machine = asm_run("""
func double
  push fp
  mov fp, sp
  ld r0, [fp+2]
  add r0, r0, r0
  mov sp, fp
  pop fp
  ret

func main
  mov r0, 21
  push r0
  call double
  add sp, sp, 1
  sys print
  halt
""")
        assert machine.output == [42]

    def test_indirect_jump_through_table(self):
        machine = asm_run("""
.data jt = case0 case1
func main
  mov r0, 1
  lea r1, jt
  add r1, r1, r0
  ld r1, [r1]
  ijmp r1
case0:
  mov r0, 100
  sys print
  halt
case1:
  mov r0, 200
  sys print
  halt
""")
        assert machine.output == [200]
