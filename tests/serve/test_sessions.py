"""Session-manager tests: LRU behaviour by entry count and by bytes.

A resident session is the expensive artifact (compiled program + traced
replay + built DDG index); the manager's job is to keep hot ones and
evict cold ones.  These tests pin down hit/miss accounting, eviction
order, the byte bound, and the cache-off mode (``max_entries=0``).
"""

import pytest

from repro.serve import PinballStore, SessionManager

from tests.support.progen import build_program, generate_source, \
    record_pinball


@pytest.fixture
def store(tmp_path):
    return PinballStore(str(tmp_path / "store"))


def stash(store, seed):
    """Record progen ``seed`` and store both pinball and source."""
    program = build_program(seed)
    pinball = record_pinball(program, seed)
    source_sha = store.put_source(generate_source(seed), program.name,
                                  tags=("t",))
    pinball_sha = store.put_pinball(pinball, tags=("t",),
                                    meta={"source_sha": source_sha})
    return pinball_sha, source_sha, program.name


class TestHitMiss:
    def test_open_twice_is_one_miss_one_hit(self, store):
        key = stash(store, 1)
        manager = SessionManager(store, max_entries=4)
        first = manager.open(*key)
        second = manager.open(*key)
        assert first is second
        assert (manager.misses, manager.hits) == (1, 1)

    def test_open_builds_usable_session(self, store):
        key = stash(store, 2)
        manager = SessionManager(store, max_entries=4)
        session = manager.open(*key)
        # The DDG index was pre-built and the session answers queries.
        assert session.slicer.ddg is not None
        criterion = session.last_reads(1)
        assert criterion is not None

    def test_distinct_keys_are_distinct_sessions(self, store):
        key_a = stash(store, 3)
        key_b = stash(store, 4)
        manager = SessionManager(store, max_entries=4)
        assert manager.open(*key_a) is not manager.open(*key_b)
        assert manager.misses == 2


class TestEntryEviction:
    def test_lru_evicts_least_recently_used(self, store):
        keys = [stash(store, seed) for seed in (10, 11, 12)]
        manager = SessionManager(store, max_entries=2)
        manager.open(*keys[0])
        manager.open(*keys[1])
        manager.open(*keys[0])        # refresh 0: now 1 is the LRU
        manager.open(*keys[2])        # evicts 1
        assert manager.evictions == 1
        manager.open(*keys[0])        # still resident
        assert manager.hits == 2
        manager.open(*keys[1])        # gone: rebuild
        assert manager.misses == 4

    def test_cache_disabled_always_misses(self, store):
        key = stash(store, 13)
        manager = SessionManager(store, max_entries=0)
        first = manager.open(*key)
        second = manager.open(*key)
        assert first is not second
        assert manager.hits == 0
        assert manager.misses == 2


class TestByteEviction:
    def test_byte_bound_evicts(self, store):
        keys = [stash(store, seed) for seed in (20, 21)]
        # index_cache off: this test reasons about the byte charge of
        # *cold* builds, and a persistent-cache warm start would make
        # the second manager's sessions cheaper than the bound below.
        manager = SessionManager(store, max_entries=16, index_cache=False)
        manager.open(*keys[0])
        one_session_bytes = manager.cached_bytes
        assert one_session_bytes > 0
        # A bound that fits the first resident session exactly: adding
        # any second session must push the cache over and evict.
        tight = SessionManager(store, max_entries=16,
                               max_bytes=one_session_bytes,
                               index_cache=False)
        tight.open(*keys[0])
        assert tight.evictions == 0
        tight.open(*keys[1])
        assert tight.evictions >= 1
        assert tight.cached_bytes <= one_session_bytes

    def test_stats_shape(self, store):
        key = stash(store, 22)
        manager = SessionManager(store, max_entries=2)
        manager.open(*key)
        stats = manager.stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["approx_bytes"] > 0
        assert stats["max_entries"] == 2


class TestInvalidate:
    def test_invalidate_drops_resident_session(self, store):
        key = stash(store, 30)
        manager = SessionManager(store, max_entries=4)
        first = manager.open(*key)
        manager.invalidate(key[0])
        second = manager.open(*key)
        assert first is not second
        assert manager.misses == 2

    def test_unknown_pinball_raises_keyerror(self, store):
        manager = SessionManager(store, max_entries=4)
        with pytest.raises(KeyError):
            manager.open("0" * 64, "1" * 64, "nope")
