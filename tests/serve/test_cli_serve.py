"""CLI robustness for the service verbs: exit codes and clean failure.

Satellite spec, verbatim: ``repro client`` against a dead server exits
69 with a one-line message (no traceback); KeyboardInterrupt and
BrokenPipeError mid-command exit 130 / 141 cleanly.  Table-driven, in
the style of the existing exit-65 corrupt-pinball tests.
"""

import json
import socket

import pytest

from repro.cli import main
from repro.serve import DebugClient, rpc

from tests.serve.conftest import RACY_SOURCE, running_server


def free_port() -> int:
    """A port that was just free — nothing is listening on it."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------------------
# Table-driven exit codes.
# ---------------------------------------------------------------------------

EXIT_TABLE = [
    # (id, raiser, expected_exit, stderr_needle)
    ("refused", ConnectionRefusedError(), 69, "connection refused"),
    ("reset", ConnectionResetError("peer vanished"), 69, "error:"),
    ("timeout", TimeoutError("deadline"), 69, "error:"),
    ("interrupt", KeyboardInterrupt(), 130, "interrupted"),
    ("remote", rpc.RpcRemoteError(rpc.NOT_FOUND, "no such recording"),
     70, "server error"),
]


class TestExitCodes:
    @pytest.mark.parametrize(
        "raiser,expected,needle",
        [row[1:] for row in EXIT_TABLE],
        ids=[row[0] for row in EXIT_TABLE])
    def test_client_failure_exit_codes(self, monkeypatch, capsys,
                                       raiser, expected, needle):
        def explode(args):
            raise raiser
        monkeypatch.setattr("repro.cli._client_connect", explode)
        code = main(["client", "ping"])
        assert code == expected
        err = capsys.readouterr().err
        assert needle in err
        assert "Traceback" not in err

    def test_connection_refused_is_69_for_real(self, capsys):
        """No monkeypatching: a genuinely dead port."""
        code = main(["client", "--port", str(free_port()), "ping"])
        assert code == 69
        err = capsys.readouterr().err
        assert "connection refused" in err
        assert "repro serve" in err          # the hint names the fix
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_serve_keyboard_interrupt_is_130(self, monkeypatch, capsys,
                                             tmp_path):
        def interrupted_run(server, port_file=None, announce=None):
            raise KeyboardInterrupt
        monkeypatch.setattr("repro.cli.run_server", interrupted_run)
        code = main(["serve", "--store", str(tmp_path / "s"),
                     "--port", "0"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_broken_pipe_is_141(self, monkeypatch, capsys):
        """`repro client list | head` style: downstream reader is gone."""
        class PipelessClient:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def ping(self):
                raise BrokenPipeError

        monkeypatch.setattr("repro.cli._client_connect",
                            lambda args: PipelessClient())
        assert main(["client", "ping"]) == 141

    def test_bad_json_params_is_65(self, capsys):
        code = main(["client", "call", "ping", "{not json"])
        assert code == 65
        assert "error:" in capsys.readouterr().err

    def test_mid_call_node_death_is_70_not_a_traceback(self, capsys):
        """Regression: the server accepting the connection and then dying
        mid-response used to escape as a raw ConnectionResetError.  The
        client wraps it as a typed remote error → exit 70 (the existing
        'reset' row above covers the *connect*-phase reset, which stays
        69)."""
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def vanish():
            conn, _ = listener.accept()
            conn.recv(65536)       # accept the request line...
            conn.close()           # ...and die without answering

        thread = threading.Thread(target=vanish, daemon=True)
        thread.start()
        try:
            code = main(["client", "--port", str(port), "ping"])
        finally:
            thread.join(10)
            listener.close()
        assert code == 70
        err = capsys.readouterr().err
        assert "server error" in err
        assert "mid-call" in err
        assert "Traceback" not in err


# ---------------------------------------------------------------------------
# Happy-path round trip through the real CLI verbs.
# ---------------------------------------------------------------------------

class TestClientRoundTrip:
    @pytest.fixture(scope="class")
    def live(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-serve") / "store"
        with running_server(root, workers=1) as server:
            yield server

    def args(self, server, *rest):
        return ["client", "--port", str(server.port), *rest]

    def test_ping(self, live, capsys):
        assert main(self.args(live, "ping")) == 0
        assert "pong" in capsys.readouterr().out

    def test_record_list_slice_flow(self, live, tmp_path, capsys):
        source = tmp_path / "racy.mc"
        source.write_text(RACY_SOURCE)
        assert main(self.args(live, "record", str(source),
                              "--expose", "64", "--switch-prob", "0.3",
                              "--tag", "cli")) == 0
        out = capsys.readouterr().out
        key = [line for line in out.splitlines() if "key" in line]
        assert key
        # Pull the stored key back out via the JSON list path.
        assert main(self.args(live, "--json", "list", "--tag",
                              "cli")) == 0
        import json as jsonlib
        entries = jsonlib.loads(capsys.readouterr().out)["entries"]
        stored = [e for e in entries if e["kind"] == "pinball"]
        assert stored
        sha = stored[0]["sha"]
        assert main(self.args(live, "replay", sha)) == 0
        capsys.readouterr()
        assert main(self.args(live, "slice", sha)) == 0
        assert "slice" in capsys.readouterr().out.lower()

    def test_stats_shows_nonzero_requests(self, live, capsys):
        assert main(self.args(live, "--json", "stats")) == 0
        import json as jsonlib
        stats = jsonlib.loads(capsys.readouterr().out)
        assert stats["server"]["requests"] >= 1

    def test_unknown_remote_key_exits_70(self, live, capsys):
        code = main(self.args(live, "replay", "0" * 64))
        assert code == 70
        assert "server error" in capsys.readouterr().err


class TestServePortFile:
    def test_port_file_announces_resolved_port(self, tmp_path):
        """`repro serve --port 0 --port-file` writes the real port; a
        client can use it.  Run in-process on a thread."""
        import threading

        from repro.cli import main as cli_main
        port_file = tmp_path / "port"
        thread = threading.Thread(
            target=cli_main,
            args=(["serve", "--store", str(tmp_path / "s"), "--port", "0",
                   "--workers", "1", "--port-file", str(port_file)],),
            daemon=True)
        thread.start()
        deadline = 50
        import time
        for _ in range(deadline * 10):
            if port_file.exists() and port_file.read_text().strip():
                break
            time.sleep(0.1)
        else:
            raise AssertionError("port file never appeared")
        port = int(port_file.read_text().strip())
        with DebugClient(port=port, timeout=20) as client:
            assert client.ping()["pong"] is True
            client.shutdown()
        thread.join(20)
        assert not thread.is_alive()


class TestAnalysisParity:
    """`repro client races`/`hunt` match the local commands: same field
    names (one shared report schema) and the same 2-on-findings exit
    code."""

    @pytest.fixture(scope="class")
    def live_racy(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-hunt") / "store"
        source = tmp_path_factory.mktemp("cli-hunt-src") / "racy.mc"
        source.write_text(RACY_SOURCE)
        with running_server(root, workers=2) as server:
            assert main(["client", "--port", str(server.port), "record",
                         str(source), "--expose", "64",
                         "--switch-prob", "0.3", "--tag", "parity"]) == 0
            with DebugClient(port=server.port, timeout=30) as client:
                entries = client.list(kind="pinball",
                                      tag="parity")["entries"]
            yield server, str(source), entries[0]["sha"]

    def args(self, server, *rest):
        return ["client", "--port", str(server.port), *rest]

    def test_races_parity(self, live_racy, tmp_path, capsys):
        server, source, key = live_racy
        # Local side: record deterministically from the same source by
        # downloading the stored pinball, then run `repro races --json`.
        pinball_path = str(tmp_path / "served.pinball")
        assert main(self.args(server, "get", key,
                              "-o", pinball_path)) == 0
        capsys.readouterr()
        local_code = main(["races", source, pinball_path, "--json"])
        local = json.loads(capsys.readouterr().out)
        remote_code = main(self.args(server, "--json", "races", key))
        remote = json.loads(capsys.readouterr().out)
        assert local_code == remote_code == 2
        assert local == remote      # byte-for-byte field parity

    def test_hunt_parity_and_exit_code(self, live_racy, capsys):
        server, _source, key = live_racy
        capsys.readouterr()
        code = main(self.args(server, "--json", "hunt", key,
                              "--budget", "4", "--profile-seeds", "2",
                              "--minimize-budget", "8"))
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        from repro.analysis.report import validate_report
        validate_report(payload)
        confirmed = [f for f in payload["findings"]
                     if f["outcome"] == "crash"]
        assert confirmed and confirmed[0]["minimized_key"]
        # The minimized pinball is a real store object.
        with DebugClient(port=server.port, timeout=30) as client:
            blob = client.get_blob(confirmed[0]["minimized_key"])
        assert blob

    def test_clean_recording_hunts_to_zero(self, live_racy, tmp_path,
                                           capsys):
        server, _source, _key = live_racy
        clean = tmp_path / "clean.mc"
        clean.write_text(
            "int main() { int i; int s; s = 0;\n"
            "for (i = 0; i < 5; i = i + 1) { s = s + i; }\n"
            "print(s); return 0; }\n")
        assert main(self.args(server, "record", str(clean),
                              "--tag", "clean-hunt")) == 0
        capsys.readouterr()
        with DebugClient(port=server.port, timeout=30) as client:
            entries = client.list(kind="pinball",
                                  tag="clean-hunt")["entries"]
        assert main(self.args(server, "hunt", entries[0]["sha"],
                              "--budget", "3", "--profile-seeds", "2",
                              "--minimize-budget", "6")) == 0
