"""Differential oracle for the routed fleet: scale-out changes nothing.

Satellite spec, verbatim: ten seeded random programs served through a
router + two real serve nodes must produce slice payloads and slice
pinballs identical to direct in-process slicing — including when a node
is chaos-killed mid-run, and when a cold node warm-starts from the
persistent index cache instead of building.

The store is content-addressed, so slice-pinball *byte identity* is
asserted through sha equality: the fixture stores the in-process slice
pinball and the served one must land on the very same key.
"""

import json

import pytest

from repro import config
from repro.serve import DebugClient, PinballStore, rpc
from repro.serve.server import CHAOS_EXIT_STATUS
from repro.serve.sessions import (resolve_criterion, slice_locations,
                                  slice_payload)
from repro.slicing import SlicingSession
from repro.slicing.ddg_serde import options_fingerprint, serialize_index

from tests.serve.test_chaos import node_fleet, running_router
from tests.support.progen import build_program, generate_source, \
    record_pinball

SEEDS = list(range(10))


def pick_var(session, seed: int) -> str:
    for off in range(4):
        name = "g%d" % ((seed + off) % 4)
        try:
            resolve_criterion(session, {"var": name})
            return name
        except ValueError:
            continue
    raise AssertionError("seed %d wrote no shared global" % seed)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Ten stored recordings, their in-process oracles, and — for the
    ddg engine — pre-seeded persistent index blobs, so every node in
    every test below cold-starts the way a fresh fleet member would."""
    root = str(tmp_path_factory.mktemp("router-diff") / "store")
    store = PinballStore(root)
    oracle = {}
    for seed in SEEDS:
        program = build_program(seed)
        pinball = record_pinball(program, seed)
        source_sha = store.put_source(generate_source(seed), program.name,
                                      tags=("diff",))
        pinball_sha = store.put_pinball(
            pinball, tags=("diff",),
            meta={"source_sha": source_sha,
                  "program_name": program.name})
        session = SlicingSession(pinball, program)
        var = pick_var(session, seed)
        params = {"var": var}
        criterion = resolve_criterion(session, params)
        dslice = session.slice_for(criterion,
                                   slice_locations(session, params))
        payload = slice_payload(session, dslice)
        slice_pb = session.make_slice_pinball(dslice)
        slice_sha = store.put_pinball(slice_pb, tags=("diff-slice",))
        if session.options.index == "ddg":
            fingerprint = options_fingerprint(session.options)
            store.put_index(pinball_sha, fingerprint,
                            serialize_index(session.slicer.ddg,
                                            fingerprint))
        oracle[seed] = {"sha": pinball_sha, "var": var,
                        "payload": payload, "slice_sha": slice_sha}
    return root, oracle


def canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def assert_seed_identical(client, info) -> None:
    served = client.slice(info["sha"], global_name=info["var"],
                          slice_pinball=True)
    slice_key = served.pop("slice_pinball_key")
    served.pop("kept_instructions", None)
    assert canonical(served) == canonical(info["payload"])
    # Content-addressed store: same key == byte-identical pinball.
    assert slice_key == info["slice_sha"]


def test_routed_fleet_matches_in_process(corpus, tmp_path):
    root, oracle = corpus
    with node_fleet(root, tmp_path, 2) as (_procs, ports):
        with running_router(ports) as router:
            with DebugClient(port=router.port, timeout=120) as client:
                for seed in SEEDS:
                    assert_seed_identical(client, oracle[seed])
            assert router.counts["forwarded"] >= len(SEEDS)
            assert router.counts["errors"] == 0
            # Key affinity spread the ten recordings over both nodes.
            assert all(node.forwarded > 0 for node in router.nodes)


def test_identical_after_mid_run_node_kill(corpus, tmp_path):
    root, oracle = corpus
    marker = str(tmp_path / "die-once")
    chaos_env = {"REPRO_CHAOS_EXIT_ON": "slice",
                 "REPRO_CHAOS_ONCE_PATH": marker}
    with node_fleet(root, tmp_path, 2, extra_env=chaos_env) as \
            (procs, ports):
        with running_router(ports) as router:
            with DebugClient(port=router.port, timeout=120) as client:
                for seed in SEEDS:
                    assert_seed_identical(client, oracle[seed])
            assert router.counts["node_deaths"] >= 1
            assert router.counts["retries"] >= 1
        codes = [proc.poll() for proc in procs]
        assert codes.count(CHAOS_EXIT_STATUS) == 1


def test_cold_node_warm_starts_from_cached_indexes(corpus, tmp_path):
    if config.slice_index() != "ddg":
        pytest.skip("index cache only serves the ddg engine")
    root, oracle = corpus
    with node_fleet(root, tmp_path, 1,
                    extra_env={"REPRO_OBS": "1"}) as (_procs, ports):
        with DebugClient(port=ports[0], timeout=120) as client:
            for seed in SEEDS[:4]:
                assert_seed_identical(client, oracle[seed])
            stats = client.stats()
    cache = [worker["sessions"]["index_cache"]
             for worker in stats["worker_sessions"]
             if "sessions" in worker]
    assert sum(entry["hits"] for entry in cache) >= 4
    # Warm starts, not rebuilds: nothing was re-serialized.
    assert sum(entry["writes"] for entry in cache) == 0


def test_unknown_key_through_the_router_is_typed(corpus, tmp_path):
    root, _oracle = corpus
    with node_fleet(root, tmp_path, 1) as (_procs, ports):
        with running_router(ports) as router:
            with DebugClient(port=router.port, timeout=60) as client:
                with pytest.raises(rpc.RpcRemoteError) as excinfo:
                    client.slice("0" * 64)
                assert excinfo.value.code == rpc.NOT_FOUND
