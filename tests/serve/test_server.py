"""End-to-end TCP tests: every RPC verb against a live DebugServer.

One module-scoped server backed by one module-scoped failing recording
of the racy demo program; each test opens its own client connection.
Covers the full verb surface: ping, stats, record, replay, slice,
last_reads, races, build, store.put / put_recording / get / list / tag /
untag / gc / stats, and shutdown (exercised implicitly by the teardown
of every suite using :func:`running_server`).
"""

import base64

import pytest

from repro.pinplay import Pinball
from repro.serve import DebugClient, rpc

from tests.serve.conftest import RACY_SOURCE, running_server


@pytest.fixture(scope="module")
def server(tmp_path_factory, racy_recording):
    _program, pinball = racy_recording
    root = tmp_path_factory.mktemp("e2e") / "store"
    with running_server(root, workers=2) as live:
        with DebugClient(port=live.port, timeout=60) as client:
            uploaded = client.put_recording(
                RACY_SOURCE, pinball.to_bytes(compress=False),
                program_name="racy", tags=("seed",))
        yield live, uploaded["key"], uploaded["source_sha"]


@pytest.fixture
def client(server):
    live, _key, _source = server
    with DebugClient(port=live.port, timeout=120) as connection:
        yield connection


class TestServiceVerbs:
    def test_ping(self, client):
        result = client.ping()
        assert result["pong"] is True
        assert result["uptime_sec"] >= 0

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["server"]["requests"] >= 1
        assert stats["pool"]["workers"] == 2
        assert stats["store"]["entries"] >= 2
        assert isinstance(stats["worker_sessions"], list)
        assert len(stats["worker_sessions"]) == 2

    def test_record_stores_and_returns_key(self, client):
        result = client.record(RACY_SOURCE, program_name="racy",
                               expose=64, switch_prob=0.3, tags=["rec"])
        assert result["failure"] is not None
        assert len(result["key"]) == 64
        listed = client.list(tag="rec")["entries"]
        assert any(entry["sha"] == result["key"] for entry in listed)

    def test_replay_reproduces_failure(self, server, client):
        _live, key, _source = server
        result = client.replay(key)
        assert result["failure"] is not None
        assert result["instructions"] > 0

    def test_slice_returns_canonical_payload(self, server, client):
        _live, key, _source = server
        result = client.slice(key)
        assert result["node_count"] == len(result["nodes"])
        assert result["node_count"] > 0
        assert result["criterion"]

    def test_slice_pinball_is_stored_and_replayable(self, server, client):
        _live, key, _source = server
        result = client.slice(key, slice_pinball=True, tags=["slice"])
        slice_key = result["slice_pinball_key"]
        blob = client.get_blob(slice_key)
        slice_pb = Pinball.from_bytes(blob, source="<test>")
        assert slice_pb.program_name == "racy"
        replayed = client.replay(slice_key, no_verify=True)
        assert replayed["instructions"] > 0
        assert result["kept_instructions"] is not None

    def test_last_reads(self, server, client):
        _live, key, _source = server
        result = client.last_reads(key, count=4)
        assert 1 <= len(result["reads"]) <= 4

    def test_races_finds_the_lost_update(self, server, client):
        _live, key, _source = server
        result = client.races(key)
        assert result["race_count"] >= 1
        assert any("x" in row["description"] for row in result["races"])

    def test_build(self, server, client):
        _live, key, _source = server
        result = client.call("build", {"key": key})
        assert result["built"] is True
        assert result["trace_records"] > 0


class TestStoreVerbs:
    def test_put_get_roundtrip(self, client):
        blob = base64.b64encode(b"raw payload").decode("ascii")
        result = client.call("store.put", {"blob": blob, "kind": "misc",
                                           "tags": ["keep"]})
        assert result["deduplicated"] is False
        assert client.get_blob(result["sha"]) == b"raw payload"

    def test_put_dedups(self, client):
        blob = base64.b64encode(b"dedup me").decode("ascii")
        first = client.call("store.put", {"blob": blob, "tags": ["keep"]})
        second = client.call("store.put", {"blob": blob, "tags": ["keep"]})
        assert first["sha"] == second["sha"]
        assert second["deduplicated"] is True

    def test_list_filters_by_kind(self, client):
        entries = client.list(kind="source")["entries"]
        assert entries and all(e["kind"] == "source" for e in entries)

    def test_tag_untag_gc(self, client):
        blob = base64.b64encode(b"doomed").decode("ascii")
        sha = client.call("store.put", {"blob": blob,
                                        "tags": ["tmp"]})["sha"]
        tagged = client.call("store.tag", {"sha": sha, "tags": ["extra"]})
        assert set(tagged["tags"]) == {"tmp", "extra"}
        client.call("store.untag", {"sha": sha, "tags": ["tmp", "extra"]})
        removed = client.gc()["removed"]
        assert sha in removed

    def test_store_stats(self, client):
        stats = client.call("store.stats")
        assert stats["entries"] >= 1
        assert stats["bytes_stored"] > 0


class TestErrors:
    def test_unknown_key_is_not_found(self, client):
        with pytest.raises(rpc.RpcRemoteError) as excinfo:
            client.replay("0" * 64)
        assert excinfo.value.code == rpc.NOT_FOUND

    def test_record_without_program_is_invalid_params(self, client):
        with pytest.raises(rpc.RpcRemoteError) as excinfo:
            client.call("record", {})
        assert excinfo.value.code == rpc.INVALID_PARAMS

    def test_bad_base64_is_invalid_params(self, client):
        with pytest.raises(rpc.RpcRemoteError) as excinfo:
            client.call("store.put", {"blob": "!!! not base64 !!!"})
        assert excinfo.value.code == rpc.INVALID_PARAMS

    def test_corrupt_uploaded_pinball_is_bad_pinball(self, client):
        mangled = base64.b64encode(b"not a pinball").decode("ascii")
        with pytest.raises(rpc.RpcRemoteError) as excinfo:
            client.call("store.put_recording",
                        {"program": "int main() { return 0; }",
                         "pinball": mangled})
        assert excinfo.value.code == rpc.BAD_PINBALL

    def test_errors_do_not_kill_the_connection(self, client):
        with pytest.raises(rpc.RpcRemoteError):
            client.replay("0" * 64)
        assert client.ping()["pong"] is True
