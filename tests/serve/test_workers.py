"""Worker-pool tests: compute ops, backpressure, timeouts, crash recovery.

The pool's contract, verbatim from the spec: per-request timeout,
bounded queue with explicit backpressure rejection (never unbounded
blocking), and a worker crash mid-request is detected, the worker
respawned, and the request retried once before surfacing an error.
"""

import time

import pytest

from repro.serve import (PinballStore, PoolBusyError, PoolTimeoutError,
                         WorkerCrashError, WorkerPool)
from repro.serve.workers import RemoteOpError

from tests.support.progen import build_program, generate_source, \
    record_pinball

SEED = 7


@pytest.fixture(scope="module")
def stocked_store(tmp_path_factory):
    """A store holding one progen recording, shared by the module."""
    root = str(tmp_path_factory.mktemp("pool-store"))
    store = PinballStore(root)
    program = build_program(SEED)
    pinball = record_pinball(program, SEED)
    source_sha = store.put_source(generate_source(SEED), program.name,
                                  tags=("t",))
    pinball_sha = store.put_pinball(pinball, tags=("t",),
                                    meta={"source_sha": source_sha})
    return store, pinball_sha, source_sha, program.name


@pytest.fixture(scope="module")
def pool(stocked_store):
    store, _, _, _ = stocked_store
    with WorkerPool(store.root, workers=2, queue_limit=8,
                    default_timeout=60) as running:
        yield running


class TestOps:
    def test_ping(self, pool):
        result = pool.call("ping", {})
        assert result["pong"] is True
        assert result["pid"] != 0

    def test_replay_op(self, pool, stocked_store):
        _store, pinball_sha, source_sha, name = stocked_store
        result = pool.call("replay", {
            "pinball": pinball_sha, "source": source_sha,
            "program_name": name})
        assert isinstance(result["reason"], str) and result["reason"]
        assert result["instructions"] > 0

    def test_slice_op_and_affinity(self, pool, stocked_store):
        _store, pinball_sha, source_sha, name = stocked_store
        params = {"pinball": pinball_sha, "source": source_sha,
                  "program_name": name, "count": 3}
        first = pool.call("last_reads", params, key=pinball_sha)
        second = pool.call("last_reads", params, key=pinball_sha)
        assert first == second
        # Key affinity: the repeat query hit one worker's resident LRU.
        stats = pool.worker_stats()
        hits = sum(w["sessions"]["hits"] for w in stats)
        assert hits >= 1

    def test_unknown_op_is_remote_error(self, pool):
        with pytest.raises(RemoteOpError) as excinfo:
            pool.call("no_such_op", {})
        assert "no_such_op" in str(excinfo.value)

    def test_remote_exception_propagates_type_name(self, pool):
        with pytest.raises(RemoteOpError) as excinfo:
            pool.call("replay", {"pinball": "0" * 64,
                                 "source": "1" * 64,
                                 "program_name": "ghost"})
        assert excinfo.value.error_type == "KeyError"


class TestBackpressure:
    def test_queue_limit_rejects_not_blocks(self, stocked_store):
        store, _, _, _ = stocked_store
        with WorkerPool(store.root, workers=1, queue_limit=2,
                        default_timeout=30) as pool:
            # Occupy the worker, then fill the bounded queue.
            futures = [pool.submit("__sleep__", {"sec": 1.0})
                       for _ in range(2)]
            started = time.monotonic()
            with pytest.raises(PoolBusyError):
                for _ in range(8):
                    futures.append(
                        pool.submit("__sleep__", {"sec": 1.0}))
            # Rejection was immediate — no hidden blocking.
            assert time.monotonic() - started < 0.5
            assert pool.stats()["rejected"] >= 1
            for future in futures:
                future.result(timeout=30)

    def test_recovers_after_drain(self, stocked_store):
        store, _, _, _ = stocked_store
        with WorkerPool(store.root, workers=1, queue_limit=1,
                        default_timeout=30) as pool:
            future = pool.submit("__sleep__", {"sec": 0.2})
            future.result(timeout=10)
            assert pool.call("ping", {})["pong"] is True


class TestTimeout:
    def test_slow_request_times_out(self, stocked_store):
        store, _, _, _ = stocked_store
        with WorkerPool(store.root, workers=1, queue_limit=8,
                        default_timeout=30) as pool:
            with pytest.raises(PoolTimeoutError):
                pool.call("__sleep__", {"sec": 5.0}, timeout=0.3)
            assert pool.stats()["timeouts"] == 1
            # The late result is discarded, not misdelivered: the next
            # call gets its own answer.
            assert pool.call("ping", {}, timeout=30)["pong"] is True


class TestCrashRecovery:
    def test_crash_is_requeued_once_then_succeeds(self, stocked_store):
        """``__crash__`` with ``once`` kills the worker on first
        delivery only; the retry (on the respawned worker) succeeds."""
        store, _, _, _ = stocked_store
        with WorkerPool(store.root, workers=1, queue_limit=8,
                        default_timeout=60) as pool:
            marker = str(store.root) + "/crash-once"
            result = pool.call("__crash__", {"once_path": marker},
                               timeout=30)
            assert result["ok"] is True
            assert pool.stats()["crashes"] == 1
            assert pool.stats()["requeued"] == 1

    def test_repeated_crash_surfaces_worker_crash_error(
            self, stocked_store):
        store, _, _, _ = stocked_store
        with WorkerPool(store.root, workers=1, queue_limit=8,
                        default_timeout=60) as pool:
            with pytest.raises(WorkerCrashError):
                pool.call("__crash__", {}, timeout=30)
            assert pool.stats()["crashes"] >= 2

    def test_pool_usable_after_crash(self, stocked_store):
        store, pinball_sha, source_sha, name = stocked_store
        with WorkerPool(store.root, workers=2, queue_limit=8,
                        default_timeout=60) as pool:
            with pytest.raises(WorkerCrashError):
                pool.call("__crash__", {}, timeout=30)
            # Respawned workers still serve real requests.
            result = pool.call("replay", {
                "pinball": pinball_sha, "source": source_sha,
                "program_name": name}, timeout=60)
            assert result["instructions"] > 0
