"""Protocol robustness: hostile bytes on the wire never crash the server.

Satellite spec, verbatim: feed malformed JSON-RPC (truncated JSON,
wrong types, oversized payloads, unknown methods) at a live server and
assert every one yields a structured error response — never an unhandled
exception or a wedged connection — and that the request-size cap is
enforced.

Two levels: pure-function fuzz of :func:`repro.serve.rpc.parse_request`
(fast, hundreds of seeded mutations) and socket-level fuzz against a
real listening :class:`DebugServer`.
"""

import json
import random
import socket

import pytest

from repro.serve import DebugClient, rpc

from tests.serve.conftest import running_server

# ---------------------------------------------------------------------------
# Level 1: parse_request never raises anything but RpcError.
# ---------------------------------------------------------------------------

MALFORMED_LINES = [
    b"",
    b"\n",
    b"not json at all",
    b"{",
    b"{}",
    b"[]",
    b"[1, 2, 3]",
    b'"just a string"',
    b"42",
    b"null",
    b"true",
    b'{"jsonrpc": "2.0"}',
    b'{"method": 42}',
    b'{"method": null}',
    b'{"method": ["ping"]}',
    b'{"method": "ping", "params": 7}',
    b'{"method": "ping", "params": [1]}',
    b'{"method": "ping", "params": "x"}',
    b'{"method": "ping", "id": {"a": 1}}',
    b'{"method": "ping", "id": [1]}',
    b'{"method": "ping"',                      # truncated object
    b'{"method": "ping", "params": {"a": ',    # truncated mid-value
    b"\xff\xfe invalid utf8 \x80",
    b'{"method": "\xc3"}',                     # broken utf-8 in value
]


class TestParseRequest:
    @pytest.mark.parametrize("line", MALFORMED_LINES,
                             ids=range(len(MALFORMED_LINES)))
    def test_malformed_line_raises_only_rpcerror(self, line):
        with pytest.raises(rpc.RpcError) as excinfo:
            rpc.parse_request(line)
        assert isinstance(excinfo.value.code, int)
        assert excinfo.value.message

    def test_oversized_line_is_rejected_with_typed_code(self):
        line = json.dumps({"method": "ping",
                           "params": {"pad": "x" * 1024}}).encode()
        with pytest.raises(rpc.RpcError) as excinfo:
            rpc.parse_request(line, max_bytes=128)
        assert excinfo.value.code == rpc.OVERSIZED_REQUEST

    def test_valid_request_parses(self):
        line = rpc.encode_message(rpc.make_request("ping", {}, req_id=1))
        request = rpc.parse_request(line)
        assert request == {"method": "ping", "params": {}, "id": 1}

    def test_seeded_mutation_fuzz(self):
        """Random byte mutations of a valid frame: parse either succeeds
        or raises RpcError — nothing else escapes."""
        rng = random.Random(0xD2DEB)
        base = rpc.encode_message(
            rpc.make_request("slice", {"key": "ab" * 32, "count": 3},
                             req_id=9)).rstrip(b"\n")
        for _ in range(500):
            mutated = bytearray(base)
            for _ in range(rng.randint(1, 6)):
                choice = rng.random()
                if choice < 0.4 and mutated:            # flip a byte
                    pos = rng.randrange(len(mutated))
                    mutated[pos] ^= 1 << rng.randrange(8)
                elif choice < 0.7 and mutated:          # delete a span
                    pos = rng.randrange(len(mutated))
                    del mutated[pos:pos + rng.randint(1, 9)]
                else:                                    # insert junk
                    pos = rng.randrange(len(mutated) + 1)
                    mutated[pos:pos] = bytes(
                        rng.randrange(256) for _ in range(rng.randint(1, 5)))
            try:
                request = rpc.parse_request(bytes(mutated))
            except rpc.RpcError:
                continue
            assert isinstance(request["method"], str)
            assert isinstance(request["params"], dict)


# ---------------------------------------------------------------------------
# Level 2: a live server survives the same hostility on a real socket.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fuzz_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("fuzz-store")
    with running_server(root / "store", workers=1,
                        max_request_bytes=64 * 1024) as server:
        yield server


def send_raw(server, payload: bytes, expect_reply: bool = True):
    """One raw connection: write ``payload``, read at most one line."""
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10) as sock:
        sock.sendall(payload)
        if not expect_reply:
            return b""
        sock.settimeout(10)
        handle = sock.makefile("rb")
        return handle.readline()


def assert_alive(server):
    with DebugClient(port=server.port, timeout=10) as client:
        assert client.ping()["pong"] is True


class TestServerFuzz:
    @pytest.mark.parametrize("line", [
        pytest.param(b"garbage\n", id="not-json"),
        pytest.param(b'{"method": 42}\n', id="non-string-method"),
        pytest.param(b'{"method": "ping", "params": [1]}\n',
                     id="list-params"),
        pytest.param(b'{"method": "ping"\n', id="truncated-json"),
        pytest.param(b"\xff\xfe\x80\n", id="invalid-utf8"),
    ])
    def test_malformed_gets_structured_error(self, fuzz_server, line):
        reply = send_raw(fuzz_server, line)
        response = json.loads(reply)
        assert response["error"]["code"] < 0
        assert response["error"]["message"]
        assert_alive(fuzz_server)

    def test_unknown_method_is_method_not_found(self, fuzz_server):
        frame = rpc.encode_message(
            rpc.make_request("no.such.verb", {}, req_id=3))
        response = json.loads(send_raw(fuzz_server, frame))
        assert response["error"]["code"] == rpc.METHOD_NOT_FOUND
        assert response["id"] == 3

    def test_wrong_param_types_are_invalid_params(self, fuzz_server):
        frame = rpc.encode_message(
            rpc.make_request("store.get", {"sha": 12345}, req_id=4))
        response = json.loads(send_raw(fuzz_server, frame))
        assert response["error"]["code"] in (rpc.INVALID_PARAMS,
                                             rpc.NOT_FOUND)
        assert_alive(fuzz_server)

    def test_oversized_request_rejected_connection_level(self, fuzz_server):
        pad = "x" * (2 * 64 * 1024)
        frame = rpc.encode_message(
            rpc.make_request("ping", {"pad": pad}, req_id=5))
        reply = send_raw(fuzz_server, frame)
        if reply:   # server may answer with the typed error before closing
            response = json.loads(reply)
            assert response["error"]["code"] == rpc.OVERSIZED_REQUEST
        assert_alive(fuzz_server)

    def test_half_request_then_disconnect(self, fuzz_server):
        """A client that sends half a frame and vanishes leaves no mark."""
        with socket.create_connection(("127.0.0.1", fuzz_server.port),
                                      timeout=10) as sock:
            sock.sendall(b'{"method": "pi')   # no newline, then RST-ish close
        assert_alive(fuzz_server)

    def test_many_hostile_connections_in_a_row(self, fuzz_server):
        rng = random.Random(77)
        for index in range(25):
            junk = bytes(rng.randrange(1, 256) for _ in range(
                rng.randint(1, 120))) + b"\n"
            try:
                send_raw(fuzz_server, junk)
            except (OSError, ValueError):
                pass   # a closed or empty reply is fine — a crash is not
        assert_alive(fuzz_server)

    def test_blank_lines_are_skipped(self, fuzz_server):
        with socket.create_connection(("127.0.0.1", fuzz_server.port),
                                      timeout=10) as sock:
            handle = sock.makefile("rwb")
            frame = rpc.encode_message(
                rpc.make_request("ping", {}, req_id=6))
            handle.write(b"\n\n" + frame)
            handle.flush()
            response = json.loads(handle.readline())
            assert response["result"]["pong"] is True
