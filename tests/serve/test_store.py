"""Unit + fault tests for the content-addressed pinball store.

The satellite spec, verbatim: dedup (the same program + schedule stored
twice yields one blob), gc of untagged blobs, truncated/bit-flipped
blobs on disk surface a typed error naming the blob path, and the
manifest rewrite is atomic (write-temp + ``os.replace``).
"""

import json
import os

import pytest

from repro.pinplay import Pinball, PinballFormatError
from repro.serve import PinballStore

from tests.support.progen import build_program, record_pinball

SEED = 5


@pytest.fixture
def store(tmp_path):
    return PinballStore(str(tmp_path / "store"))


@pytest.fixture(scope="module")
def recording():
    program = build_program(SEED)
    return program, record_pinball(program, SEED)


class TestPutGet:
    def test_roundtrip_bytes(self, store):
        sha, dedup = store.put(b"hello pinballs", kind="misc")
        assert not dedup
        assert store.get(sha) == b"hello pinballs"
        assert store.entry(sha).kind == "misc"

    def test_pinball_roundtrip(self, store, recording):
        _program, pinball = recording
        sha = store.put_pinball(pinball, tags=("keep",))
        loaded = store.get_pinball(sha)
        assert (loaded.to_bytes(compress=False)
                == pinball.to_bytes(compress=False))
        assert store.entry(sha).meta["program_name"] == pinball.program_name

    def test_unknown_key_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get("0" * 64)
        with pytest.raises(KeyError):
            store.entry("0" * 64)

    def test_source_roundtrip(self, store):
        sha = store.put_source("int main() { return 0; }", "tiny")
        assert store.get_source(sha) == "int main() { return 0; }"
        assert store.entry(sha).kind == "source"


class TestDedup:
    def test_same_recording_stored_twice_is_one_blob(self, store):
        """Same program + schedule -> identical payload -> one blob."""
        program = build_program(SEED)
        first = record_pinball(program, SEED)
        second = record_pinball(program, SEED)
        sha1 = store.put_pinball(first, tags=("a",))
        sha2 = store.put_pinball(second, tags=("b",))
        assert sha1 == sha2
        blobs = [name for _dir, _sub, names in os.walk(store.blob_root)
                 for name in names if name.endswith(".blob")]
        # v1: one payload blob.  v2 (chunked): the index blob plus one
        # blob per frame — still written exactly once each.
        frames = store.entry(sha1).meta.get("frames", [])
        assert sorted(blobs) == sorted(
            {sha1 + ".blob"} | {sha + ".blob" for sha in frames})
        # Tags merged onto the single entry.
        assert set(store.entry(sha1).tags) == {"a", "b"}

    def test_put_reports_dedup(self, store):
        sha1, dedup1 = store.put(b"payload")
        sha2, dedup2 = store.put(b"payload")
        assert sha1 == sha2
        assert (dedup1, dedup2) == (False, True)

    def test_different_payloads_different_keys(self, store):
        sha1, _ = store.put(b"payload one")
        sha2, _ = store.put(b"payload two")
        assert sha1 != sha2


class TestGc:
    def test_gc_removes_untagged_keeps_tagged(self, store):
        kept, _ = store.put(b"kept", tags=("pin",))
        doomed, _ = store.put(b"doomed")
        removed = store.gc()
        assert doomed in removed and kept not in removed
        assert store.get(kept) == b"kept"
        assert not os.path.exists(store.blob_path(doomed))
        with pytest.raises(KeyError):
            store.entry(doomed)

    def test_untag_then_gc(self, store):
        sha, _ = store.put(b"data", tags=("t1", "t2"))
        store.untag(sha, "t1")
        assert store.gc() == []
        store.untag(sha, "t2")
        assert store.gc() == [sha]

    def test_gc_sweeps_orphan_blobs(self, store):
        """A blob on disk without a manifest row (crash between the blob
        write and the manifest write) is swept."""
        sha, _ = store.put(b"orphan-to-be", tags=("t",))
        # Simulate the crash: manifest forgets the entry, blob remains.
        del store._entries[sha]
        store._write_manifest()
        assert os.path.exists(store.blob_path(sha))
        assert sha in store.gc()
        assert not os.path.exists(store.blob_path(sha))


class TestV2Chunking:
    """v2 pinballs are stored per-frame: the tagged entry is a small
    JSON index whose ``frames`` list names one content-addressed blob
    per container frame, so re-recording a longer run of the same
    program dedups the shared prefix."""

    def _record(self, length):
        from repro.pinplay import RegionSpec, record_region
        from tests.support.progen import inputs_for, scheduler_for
        program = build_program(SEED)
        return record_region(program, scheduler_for(SEED),
                             RegionSpec(length=length),
                             inputs=inputs_for(SEED), rand_seed=SEED,
                             pinball_format="v2", checkpoint_interval=40)

    def test_index_entry_and_reassembly(self, store):
        pinball = self._record(200)
        sha = store.put_pinball(pinball, tags=("t",))
        entry = store.entry(sha)
        assert entry.meta["format"] == "v2"
        assert entry.meta["frames"]
        # get_payload reassembles the container exactly.
        assert store.get_payload(sha) == pinball.to_bytes(format="v2")
        loaded = store.get_pinball(sha)
        assert loaded.format == "v2"
        assert list(loaded.schedule) == list(pinball.schedule)

    def test_longer_rerecording_dedups_shared_prefix(self, store):
        short = store.put_pinball(self._record(120), tags=("short",))
        full = store.put_pinball(self._record(480), tags=("full",))
        assert short != full
        short_frames = set(store.entry(short).meta["frames"])
        full_frames = set(store.entry(full).meta["frames"])
        shared = short_frames & full_frames
        # Prologue, snapshot and common-prefix checkpoint frames are
        # byte-identical, hence stored once.
        assert len(shared) >= 3
        blobs = [name for _dir, _sub, names in os.walk(store.blob_root)
                 for name in names if name.endswith(".blob")]
        # One blob per distinct frame + the two index entries.
        assert len(blobs) == len(short_frames | full_frames) + 2

    def test_gc_keeps_frames_referenced_by_survivors(self, store):
        short = store.put_pinball(self._record(120))          # untagged
        full = store.put_pinball(self._record(480), tags=("keep",))
        short_frames = set(store.entry(short).meta["frames"])
        full_frames = set(store.entry(full).meta["frames"])
        removed = store.gc()
        # The short index and its unshared frames go; every frame the
        # surviving entry references stays.
        assert short in removed
        assert set(removed) & full_frames == set()
        assert set(removed) >= short_frames - full_frames
        assert (store.get_payload(full)
                == self._record(480).to_bytes(format="v2"))
        with pytest.raises(KeyError):
            store.entry(short)

    def test_v1_pinball_is_not_chunked(self, store, recording):
        _program, pinball = recording
        sha = store.put_pinball(pinball, tags=("t",), format="v1")
        assert "frames" not in store.entry(sha).meta
        assert store.get_pinball(sha).format == "v1"


class TestCorruptBlobs:
    """Every on-disk corruption mode -> PinballFormatError naming the path."""

    @pytest.mark.parametrize("corruptor", [
        pytest.param(lambda blob: blob[: len(blob) // 2], id="truncated"),
        pytest.param(lambda blob: blob[:10] + bytes([blob[10] ^ 0xFF])
                     + blob[11:], id="bit-flipped"),
        pytest.param(lambda blob: b"", id="emptied"),
        pytest.param(lambda blob: b"garbage" * 40, id="replaced"),
    ])
    def test_corrupt_blob_is_typed_error_naming_path(self, store,
                                                     corruptor):
        sha, _ = store.put(b"x" * 4096, tags=("t",))
        path = store.blob_path(sha)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(corruptor(blob))
        with pytest.raises(PinballFormatError) as excinfo:
            store.get(sha)
        assert path in str(excinfo.value)
        # The typed error is a ValueError subclass (CLI exit-65 contract).
        assert isinstance(excinfo.value, ValueError)

    def test_valid_zlib_wrong_content_is_hash_mismatch(self, store):
        """A blob that decompresses fine but hashes differently (swapped
        file) is caught by the content re-hash."""
        import zlib
        sha, _ = store.put(b"the real payload", tags=("t",))
        path = store.blob_path(sha)
        with open(path, "wb") as handle:
            handle.write(zlib.compress(b"a different payload"))
        with pytest.raises(PinballFormatError) as excinfo:
            store.get(sha)
        assert "hash mismatch" in str(excinfo.value)
        assert path in str(excinfo.value)

    def test_corrupt_stored_pinball_via_get_pinball(self, store,
                                                    recording):
        _program, pinball = recording
        sha = store.put_pinball(pinball, tags=("t",))
        path = store.blob_path(sha)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) - 20])
        with pytest.raises(PinballFormatError):
            store.get_pinball(sha)


class TestManifest:
    def test_manifest_rewrite_is_atomic(self, store, monkeypatch):
        """A crash mid-serialization leaves the previous manifest intact
        (write goes to a temp file; ``os.replace`` is the commit)."""
        sha, _ = store.put(b"first", tags=("t",))

        real_replace = os.replace
        def exploding_replace(src, dst):   # crash before the commit
            raise RuntimeError("simulated crash during manifest commit")
        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(RuntimeError):
            store.put(b"second", tags=("t",))
        monkeypatch.setattr(os, "replace", real_replace)

        # No temp litter, and a fresh reader sees the pre-crash manifest.
        litter = [name for name in os.listdir(store.root)
                  if name.startswith("manifest.json.tmp")]
        assert litter == []
        fresh = PinballStore(store.root)
        assert fresh.get(sha) == b"first"
        assert len(fresh.list()) == 1

    def test_manifest_persists_across_instances(self, store):
        sha, _ = store.put(b"payload", kind="misc", tags=("x",),
                           meta={"note": "hi"})
        reopened = PinballStore(store.root)
        entry = reopened.entry(sha)
        assert entry.kind == "misc"
        assert entry.tags == ["x"]
        assert entry.meta == {"note": "hi"}
        assert reopened.get(sha) == b"payload"

    def test_unreadable_manifest_is_typed_error(self, tmp_path):
        root = tmp_path / "store"
        PinballStore(str(root)).put(b"x")
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(PinballFormatError) as excinfo:
            PinballStore(str(root))
        assert "manifest" in str(excinfo.value)

    def test_wrong_manifest_version_is_typed_error(self, tmp_path):
        root = tmp_path / "store"
        PinballStore(str(root)).put(b"x")
        with open(root / "manifest.json") as handle:
            payload = json.load(handle)
        payload["manifest_version"] = 99
        with open(root / "manifest.json", "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(PinballFormatError):
            PinballStore(str(root))

    def test_stats(self, store):
        store.put(b"a" * 100, kind="pinball", tags=("t",))
        store.put(b"b" * 50, kind="source")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["by_kind"] == {"pinball": 1, "source": 1}
        assert stats["bytes_raw"] == 150
        assert stats["bytes_stored"] > 0
