"""Chaos suite: injected faults across the scale-out stack (ISSUE 8).

Satellite spec, verbatim: env-gated fault injection — kill a serve node
mid-request, corrupt a cached index blob, drop router→node connections —
asserting the router retries exactly once onto a healthy node, a corrupt
cache entry falls back to a cold rebuild (**never** a wrong answer), and
every failure surfaces as a typed error, parametrized over the failure
points.

Real processes where it matters: node-kill tests spawn actual ``repro
serve`` subprocesses sharing one store (``os._exit`` cannot be faked
in-process); the router runs in-process so its counters are assertable.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

from repro import config
from repro.serve import DebugClient, PinballStore, SessionManager, rpc
from repro.serve.router import Router, run_router
from repro.serve.server import CHAOS_EXIT_STATUS
from repro.serve.sessions import (resolve_criterion, slice_locations,
                                  slice_payload)
from repro.slicing import SlicingSession

from tests.support.progen import build_program, generate_source, \
    record_pinball

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
SRC_DIR = os.path.join(REPO_ROOT, "src")

SEEDS = (1, 2)


def _kill_matching(needle: str) -> None:
    """SIGKILL any process whose cmdline mentions ``needle``.

    A chaos-killed node dies via ``os._exit``, which skips the
    ``multiprocessing`` atexit hook that would reap its daemonic
    workers; the store path is unique per test, so this sweep is exact.
    """
    for pid in os.listdir("/proc"):
        if not pid.isdigit() or int(pid) == os.getpid():
            continue
        try:
            with open("/proc/%s/cmdline" % pid, "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if needle in cmdline:
            try:
                os.kill(int(pid), 9)
            except OSError:
                pass


def spawn_node(store_root, tmp_path, name, extra_env=None):
    """One real ``repro serve`` process on a free port (port-file dance)."""
    port_file = os.path.join(str(tmp_path), "%s.port" % name)
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_root),
         "--port", "0", "--workers", "1", "--port-file", port_file],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.time() + 60
    while time.time() < deadline:
        if os.path.exists(port_file):
            text = open(port_file).read().strip()
            if text:
                return proc, int(text)
        if proc.poll() is not None:
            raise AssertionError("node %s died at startup (%s)"
                                 % (name, proc.returncode))
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("node %s never wrote its port file" % name)


@contextmanager
def node_fleet(store_root, tmp_path, count, extra_env=None):
    procs = []
    ports = []
    try:
        for index in range(count):
            proc, port = spawn_node(store_root, tmp_path, "node%d" % index,
                                    extra_env=extra_env)
            procs.append(proc)
            ports.append(port)
        yield procs, ports
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=20)
            except subprocess.TimeoutExpired:
                proc.kill()
        _kill_matching(str(store_root))


@contextmanager
def running_router(ports, **kwargs):
    kwargs.setdefault("health_interval", 0.5)
    router = Router([("127.0.0.1", port) for port in ports], port=0,
                    **kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=run_router, args=(router,),
        kwargs={"announce": lambda host, port: ready.set()}, daemon=True)
    thread.start()
    assert ready.wait(20), "router did not come up"
    try:
        yield router
    finally:
        try:
            with DebugClient(port=router.port, timeout=10) as client:
                client.shutdown()
        except (OSError, rpc.RpcRemoteError):
            pass
        thread.join(20)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A shared store with two recordings plus in-process slice oracles."""
    root = str(tmp_path_factory.mktemp("chaos") / "store")
    store = PinballStore(root)
    entries = {}
    for seed in SEEDS:
        program = build_program(seed)
        pinball = record_pinball(program, seed)
        source_sha = store.put_source(generate_source(seed), program.name,
                                      tags=("chaos",))
        pinball_sha = store.put_pinball(
            pinball, tags=("chaos",),
            meta={"source_sha": source_sha, "program_name": program.name})
        session = SlicingSession(pinball, program)
        var = next(name for name in ("g0", "g1", "g2", "g3")
                   if _writes(session, name))
        params = {"var": var}
        criterion = resolve_criterion(session, params)
        payload = slice_payload(
            session, session.slice_for(criterion,
                                       slice_locations(session, params)))
        entries[seed] = {"pinball_sha": pinball_sha, "var": var,
                         "payload": payload}
    return root, entries


def _writes(session, name):
    try:
        resolve_criterion(session, {"var": name})
        return True
    except ValueError:
        return False


def canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ---------------------------------------------------------------------------
# Failure point 1: a node process dies mid-request, per verb family.
# ---------------------------------------------------------------------------

class TestNodeDeathMidRequest:
    @pytest.mark.parametrize("verb", ("slice", "last_reads", "replay"))
    def test_router_retries_once_onto_the_survivor(self, corpus, tmp_path,
                                                   verb):
        root, entries = corpus
        seed = SEEDS[0]
        marker = str(tmp_path / ("die-once-%s" % verb))
        chaos_env = {"REPRO_CHAOS_EXIT_ON": verb,
                     "REPRO_CHAOS_ONCE_PATH": marker}
        with node_fleet(root, tmp_path, 2, extra_env=chaos_env) as \
                (procs, ports):
            with running_router(ports) as router:
                with DebugClient(port=router.port, timeout=120) as client:
                    key = entries[seed]["pinball_sha"]
                    if verb == "slice":
                        result = client.slice(key,
                                              global_name=entries[seed]["var"])
                        # The retried answer is the *right* answer.
                        result.pop("kept_instructions", None)
                        result.pop("slice_pinball_raw", None)
                        assert canonical(result) \
                            == canonical(entries[seed]["payload"])
                    elif verb == "last_reads":
                        result = client.last_reads(key, count=5)
                        assert result["reads"]
                    else:
                        result = client.replay(key)
                        assert result["steps"] > 0
                assert router.counts["node_deaths"] >= 1
                assert router.counts["retries"] >= 1
            # Exactly one node took the chaos exit (the shared marker
            # makes the second arming a no-op).
            time.sleep(0.2)
            codes = [proc.poll() for proc in procs]
            assert codes.count(CHAOS_EXIT_STATUS) == 1
            assert os.path.exists(marker)

    def test_whole_fleet_down_is_a_typed_error(self, corpus, tmp_path):
        root, entries = corpus
        with node_fleet(root, tmp_path, 1) as (procs, ports):
            pass    # fleet torn down: the port below is dead
        with running_router(ports) as router:
            # Probe until health-checking deregisters the dead node.
            with DebugClient(port=router.port, timeout=30) as client:
                code = None
                for _ in range(4):
                    try:
                        client.list()
                        break
                    except rpc.RpcRemoteError as exc:
                        code = exc.code
                assert code == rpc.NODE_UNAVAILABLE


# ---------------------------------------------------------------------------
# Failure point 2: a cached index blob is corrupt on disk.
# ---------------------------------------------------------------------------

CORRUPTIONS = [
    ("garbage", lambda blob: b"\x00garbage\xff" * 64),
    ("truncated", lambda blob: blob[:len(blob) // 3]),
    ("bit_flip", lambda blob: blob[:40]
     + bytes([blob[40] ^ 0xFF]) + blob[41:]),
]


class TestCorruptIndexBlob:
    @pytest.mark.parametrize(
        "mutilate", [row[1] for row in CORRUPTIONS],
        ids=[row[0] for row in CORRUPTIONS])
    def test_falls_back_to_rebuild_never_a_wrong_answer(
            self, corpus, tmp_path, mutilate):
        if config.slice_index() != "ddg":
            pytest.skip("index cache only serves the ddg engine")
        root, entries = corpus
        seed = SEEDS[1]
        sha = entries[seed]["pinball_sha"]
        store = PinballStore(root)
        warmer = SessionManager(store, max_entries=2)
        warmer.open(sha, *self._rest(store, sha))
        # First parametrization writes the blob; later ones warm-hit the
        # rebuilt copy — either way it exists and is valid afterwards.
        assert warmer.index_cache_writes + warmer.index_cache_hits >= 1
        # Exactly one cached index for this recording: mutilate it.
        paths = [path for psha, _fp, path in store._index_files()
                 if psha == sha]
        assert len(paths) == 1
        blob = open(paths[0], "rb").read()
        with open(paths[0], "wb") as handle:
            handle.write(mutilate(blob))

        manager = SessionManager(store, max_entries=2)
        session = manager.open(sha, *self._rest(store, sha))
        assert manager.index_cache_corrupt == 1
        assert manager.index_cache_hits == 0
        # The rebuild wrote a fresh blob and the answer is the oracle's.
        assert manager.index_cache_writes == 1
        params = {"var": entries[seed]["var"]}
        criterion = resolve_criterion(session, params)
        payload = slice_payload(
            session, session.slice_for(criterion,
                                       slice_locations(session, params)))
        assert canonical(payload) == canonical(entries[seed]["payload"])

    @staticmethod
    def _rest(store, sha):
        meta = store.entry(sha).meta
        return meta["source_sha"], meta.get("program_name", "program")


# ---------------------------------------------------------------------------
# Failure point 3: the router→node connection drops mid-forward.
# ---------------------------------------------------------------------------

class TestDroppedForward:
    @pytest.mark.parametrize("via", ("arg", "env"))
    def test_drop_is_retried_and_counted(self, corpus, tmp_path,
                                         monkeypatch, via):
        root, entries = corpus
        if via == "env":
            monkeypatch.setenv("REPRO_CHAOS_DROP_FORWARDS", "1")
            kwargs = {}
        else:
            kwargs = {"chaos_drop_forwards": 1}
        with node_fleet(root, tmp_path, 2) as (_procs, ports):
            with running_router(ports, **kwargs) as router:
                with DebugClient(port=router.port, timeout=60) as client:
                    listing = client.list(kind="pinball")
                assert listing["entries"]
                assert router.counts["chaos_drops"] == 1
                assert router.counts["retries"] >= 1
                # A single drop never deregisters a healthy node.
                assert router.counts["deregistered"] == 0


# ---------------------------------------------------------------------------
# Failure point 4: the *client's* node dies mid-call (typed, not a
# raw ConnectionResetError).
# ---------------------------------------------------------------------------

class TestClientMidCallDeath:
    def test_mid_call_death_is_node_unavailable(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def vanish():
            conn, _ = listener.accept()
            conn.recv(65536)          # swallow the request line...
            conn.close()              # ...and die without answering

        thread = threading.Thread(target=vanish, daemon=True)
        thread.start()
        try:
            with DebugClient(port=port, timeout=10) as client:
                with pytest.raises(rpc.RpcRemoteError) as excinfo:
                    client.ping()
            assert excinfo.value.code == rpc.NODE_UNAVAILABLE
            assert "mid-call" in excinfo.value.remote_message
        finally:
            thread.join(10)
            listener.close()
