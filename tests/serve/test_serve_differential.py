"""Differential oracle: served slices == direct in-process slices.

Satellite spec, verbatim: for 10 seeded random programs, a slice
computed through the full service path (store → worker pool → canonical
payload) must be **byte-identical** — nodes, edges, unresolved count —
to the slice computed directly in-process, and the slice pinball
produced remotely must replay to the same result as the one produced
locally.

The requests are submitted to the pool *concurrently* on purpose: the
oracle also proves that parallel workers and LRU routing never leak
state between recordings.
"""

import json

import pytest

from repro.pinplay import Pinball, replay
from repro.serve import PinballStore, WorkerPool
from repro.serve.sessions import (resolve_criterion, slice_locations,
                                  slice_payload)
from repro.slicing import SlicingSession

from tests.support.progen import build_program, generate_source, \
    record_pinball

SEEDS = list(range(10))

#: Each seed slices on the last write to one of the shared globals —
#: deterministic, nontrivial, and defined for every generated program
#: (progen recordings usually run to completion, so there is no failure
#: criterion to default to).  Chosen per seed at fixture time: the first
#: of g0..g3 the recording actually wrote, rotated by the seed.
VAR_FOR_SEED = {}


def pick_var(session, seed: int) -> str:
    candidates = ["g%d" % ((seed + off) % 4) for off in range(4)]
    for name in candidates:
        try:
            resolve_criterion(session, {"var": name})
            return name
        except ValueError:
            continue
    raise AssertionError("seed %d wrote no shared global" % seed)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Store all ten recordings plus their direct in-process oracles."""
    root = str(tmp_path_factory.mktemp("diff") / "store")
    store = PinballStore(root)
    oracle = {}
    for seed in SEEDS:
        program = build_program(seed)
        pinball = record_pinball(program, seed)
        source_sha = store.put_source(generate_source(seed), program.name,
                                      tags=("diff",))
        pinball_sha = store.put_pinball(
            pinball, tags=("diff",),
            meta={"source_sha": source_sha,
                  "program_name": program.name})
        session = SlicingSession(pinball, program)
        VAR_FOR_SEED[seed] = pick_var(session, seed)
        params = {"var": VAR_FOR_SEED[seed]}
        criterion = resolve_criterion(session, params)
        dslice = session.slice_for(criterion,
                                   slice_locations(session, params))
        payload = slice_payload(session, dslice)
        slice_pb = session.make_slice_pinball(dslice)
        _machine, replay_result = replay(slice_pb, program, verify=False)
        oracle[seed] = {
            "pinball_sha": pinball_sha,
            "source_sha": source_sha,
            "program_name": program.name,
            "program": program,
            "payload": payload,
            "slice_bytes": slice_pb.to_bytes(compress=False),
            "replay_reason": replay_result.reason,
        }
    return root, oracle


def canonical(payload: dict) -> bytes:
    """The byte-identity the spec asks for: one canonical JSON encoding."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def test_concurrent_served_slices_match_direct(corpus):
    root, oracle = corpus
    with WorkerPool(root, workers=4, queue_limit=32,
                    default_timeout=120) as pool:
        futures = {}
        for seed in SEEDS:   # all ten in flight at once
            info = oracle[seed]
            futures[seed] = pool.submit(
                "slice",
                {"pinball": info["pinball_sha"],
                 "source": info["source_sha"],
                 "program_name": info["program_name"],
                 "var": VAR_FOR_SEED[seed],
                 "slice_pinball": True},
                key=info["pinball_sha"], timeout=120)
        for seed in SEEDS:
            info = oracle[seed]
            served = futures[seed].result(timeout=180)
            raw = served.pop("slice_pinball_raw")
            served.pop("kept_instructions", None)
            # Byte-identical canonical payloads: nodes, edges, criterion,
            # unresolved count, source statements — everything.
            assert canonical(served) == canonical(info["payload"]), \
                "served slice diverged for seed %d" % seed
            # The remotely produced slice pinball is the same artifact...
            assert raw == info["slice_bytes"], \
                "slice pinball diverged for seed %d" % seed
            # ...and replays to the same terminal state.
            slice_pb = Pinball.from_bytes(raw, source="<served>")
            _machine, result = replay(slice_pb, info["program"],
                                      verify=False)
            assert result.reason == info["replay_reason"]


def test_repeat_queries_hit_resident_sessions_and_stay_identical(corpus):
    """Round two over a warmed pool (LRU hits) changes nothing."""
    root, oracle = corpus
    with WorkerPool(root, workers=2, queue_limit=32,
                    default_timeout=120) as pool:
        for round_index in range(2):
            futures = {
                seed: pool.submit(
                    "slice",
                    {"pinball": oracle[seed]["pinball_sha"],
                     "source": oracle[seed]["source_sha"],
                     "program_name": oracle[seed]["program_name"],
                     "var": VAR_FOR_SEED[seed]},
                    key=oracle[seed]["pinball_sha"], timeout=120)
                for seed in SEEDS[:4]}
            for seed, future in futures.items():
                served = future.result(timeout=180)
                assert (canonical(served)
                        == canonical(oracle[seed]["payload"]))
        hits = sum(w["sessions"]["hits"] for w in pool.worker_stats())
        assert hits >= 4
