"""Shared fixtures for the debug-service suites.

The heavyweight pieces — a running TCP server, a recorded racy workload
— are built once per module where possible; every fixture shuts its
resources down deterministically so worker processes never outlive the
test session.
"""

import threading
from contextlib import contextmanager

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.serve import DebugClient, DebugServer, run_server
from repro.vm import RandomScheduler

RACY_SOURCE = """
int x;
int bump(int unused) {
    x = x + 1;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 0);
    b = spawn(bump, 0);
    join(a);
    join(b);
    print(x);
    assert(x == 2, 9);
    return 0;
}
"""


def record_racy_pinball():
    """A failing recording of the racy demo program (seed search)."""
    program = compile_source(RACY_SOURCE, name="racy")
    for seed in range(64):
        pinball = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.3),
            RegionSpec())
        if pinball.meta.get("failure"):
            return program, pinball
    raise AssertionError("no failing schedule in 64 seeds")


@contextmanager
def running_server(store_root, **kwargs):
    """A live :class:`DebugServer` on a free port, torn down on exit."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("request_timeout", 60.0)
    server = DebugServer(str(store_root), port=0, **kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=run_server, args=(server,),
        kwargs={"announce": lambda host, port: ready.set()}, daemon=True)
    thread.start()
    assert ready.wait(20), "server did not come up"
    try:
        yield server
    finally:
        try:
            with DebugClient(port=server.port, timeout=10) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(20)


@pytest.fixture(scope="module")
def racy_recording():
    return record_racy_pinball()
