"""Unit tests for the whole-program CFG registry."""

import pytest

from repro.analysis import CfgRegistry
from repro.isa.instructions import Opcode
from repro.lang import compile_source

SOURCE = """
int f(int x) {
    int r;
    switch (x) {
        case 0: r = 1; break;
        case 1: r = 2; break;
        case 2: r = 3; break;
    }
    return r;
}
int g(int x) { if (x) { return 1; } return 2; }
int main() { return f(1) + g(2); }
"""


def ijmp_addr(program, func="f"):
    return next(i.addr for i in program.functions[func].instrs
                if i.op == Opcode.IJMP)


class TestRegistry:
    def test_lazy_construction_and_caching(self):
        program = compile_source(SOURCE)
        registry = CfgRegistry(program)
        cfg1 = registry.cfg("f")
        cfg2 = registry.cfg_for_addr(program.functions["f"].entry)
        assert cfg1 is cfg2

    def test_unknown_address_rejected(self):
        program = compile_source(SOURCE)
        registry = CfgRegistry(program)
        with pytest.raises(KeyError):
            registry.cfg_for_addr(10_000)

    def test_observe_refines_and_counts(self):
        program = compile_source(SOURCE)
        registry = CfgRegistry(program)
        addr = ijmp_addr(program)
        target = program.functions["f"].entry + 13  # any in-function addr
        # Use a real case target from the jump table.
        table = next(d for d in program.data_defs.values())
        image = program.initial_data_image()
        target = int(image.get(table.addr, 0))
        assert registry.observe_indirect_jump(addr, target)
        assert registry.refinements == 1
        assert not registry.observe_indirect_jump(addr, target)
        assert registry.refinements == 1

    def test_refinement_disabled(self):
        program = compile_source(SOURCE)
        registry = CfgRegistry(program, refine=False)
        addr = ijmp_addr(program)
        assert not registry.observe_indirect_jump(addr, 0)
        assert registry.refinements == 0

    def test_region_end_addr_for_branch(self):
        program = compile_source(SOURCE)
        registry = CfgRegistry(program)
        branch = next(i.addr for i in program.functions["g"].instrs
                      if i.op in (Opcode.BR, Opcode.BRZ))
        end = registry.region_end_addr(branch)
        assert end is None or isinstance(end, int)
