"""Unit and property tests for post-dominator computation."""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    build_cfg,
    compute_ipostdoms,
    postdominators_brute_force,
)
from repro.analysis.cfg import EXIT_BLOCK, BasicBlock
from repro.isa import assemble


class _FakeCfg:
    """Minimal CFG stand-in for direct graph-level tests."""

    def __init__(self, edges, nodes):
        self.blocks = {}
        for node in nodes:
            block = BasicBlock(node, node * 10, node * 10 + 1)
            self.blocks[node] = block
        for src, dst in edges:
            self.blocks[src].succs.add(dst)
            if dst != EXIT_BLOCK:
                self.blocks[dst].preds.add(src)


class TestKnownGraphs:
    def test_diamond(self):
        #   0 -> 1, 2 ; 1 -> 3 ; 2 -> 3 ; 3 -> exit
        cfg = _FakeCfg([(0, 1), (0, 2), (1, 3), (2, 3), (3, EXIT_BLOCK)],
                       [0, 1, 2, 3])
        ipd = compute_ipostdoms(cfg)
        assert ipd[0] == 3
        assert ipd[1] == 3
        assert ipd[2] == 3
        assert ipd[3] == EXIT_BLOCK

    def test_chain(self):
        cfg = _FakeCfg([(0, 1), (1, 2), (2, EXIT_BLOCK)], [0, 1, 2])
        ipd = compute_ipostdoms(cfg)
        assert ipd[0] == 1 and ipd[1] == 2 and ipd[2] == EXIT_BLOCK

    def test_loop(self):
        # 0 -> 1 ; 1 -> 2 ; 2 -> 1, exit
        cfg = _FakeCfg([(0, 1), (1, 2), (2, 1), (2, EXIT_BLOCK)], [0, 1, 2])
        ipd = compute_ipostdoms(cfg)
        assert ipd[1] == 2
        assert ipd[0] == 1

    def test_infinite_loop_has_no_postdominator(self):
        # 1 <-> 2 never reach exit; 0 -> 1 and 0 -> 3 -> exit.
        cfg = _FakeCfg([(0, 1), (1, 2), (2, 1), (0, 3), (3, EXIT_BLOCK)],
                       [0, 1, 2, 3])
        ipd = compute_ipostdoms(cfg)
        assert ipd[1] is None
        assert ipd[2] is None
        assert ipd[0] == 3

    def test_multiple_exits(self):
        # 0 -> 1, 2 ; both 1 and 2 -> exit: only exit postdominates 0.
        cfg = _FakeCfg([(0, 1), (0, 2), (1, EXIT_BLOCK), (2, EXIT_BLOCK)],
                       [0, 1, 2])
        ipd = compute_ipostdoms(cfg)
        assert ipd[0] == EXIT_BLOCK


def random_cfg(draw_edges, node_count):
    nodes = list(range(node_count))
    edges = []
    for src, dst in draw_edges:
        edges.append((src % node_count, dst % node_count))
    # Ensure at least one path to exit.
    edges.append((node_count - 1, EXIT_BLOCK))
    # Connect node 0 forward so the graph is not trivially empty.
    edges.append((0, node_count - 1))
    return _FakeCfg(edges, nodes)


class TestAgainstBruteForce:
    @given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                    min_size=0, max_size=30),
           st.integers(2, 12))
    @settings(max_examples=150, deadline=None)
    def test_iterative_matches_definition(self, raw_edges, node_count):
        cfg = random_cfg(raw_edges, node_count)
        ipd = compute_ipostdoms(cfg)
        pdom = postdominators_brute_force(cfg)
        for node in cfg.blocks:
            strict = pdom[node] - {node}
            if ipd[node] is None:
                # Node cannot reach exit: brute force yields no exit in
                # its postdominator set.
                assert EXIT_BLOCK not in pdom[node]
                continue
            # ipd is a strict postdominator...
            assert ipd[node] in strict
            # ...and every other strict postdominator postdominates it,
            # i.e. appears in ipd's own postdominator set.
            others = strict - {ipd[node]}
            if ipd[node] == EXIT_BLOCK:
                assert others == set()
            else:
                for other in others:
                    assert other in pdom[ipd[node]]


class TestOnRealCode:
    def test_nested_branches(self):
        program = assemble("""
func main
  mov r0, 1
  br r0, outer
  halt
outer:
  mov r1, 1
  br r1, inner
  jmp join1
inner:
  nop
join1:
  nop
  halt
""")
        cfg = build_cfg(program, "main")
        ipd = compute_ipostdoms(cfg)
        # Inner branch joins at join1; its block's ipd must be join1's.
        inner_branch = 5  # br r1, inner
        join_addr = program.resolve_symbol("main.join1")
        assert cfg.ipostdom_addr(inner_branch) == join_addr
