"""Differential suite for the bug firehose.

Three equivalences hold by construction and are checked here:

* **online == traced race detection** — the fast-path recorder-protocol
  detector and the classic per-instruction tool report the same races
  (same site pairs, kinds and instances) on every recording, because
  happens-before is decided solely at synchronization joins, which both
  observe identically;
* **hunt is deterministic** — the same recording hunted twice yields the
  same classification, findings and minimized schedules;
* **served == in-process** — a hunt sharded over the serve worker pool
  merges to the same findings and *byte-identical* minimized pinballs
  as a single-process hunt, and a worker killed mid-hunt is respawned
  with the request requeued, losing no findings.
"""

import os
import signal
import time

import pytest

from repro.analysis.hunt import PerturbedScheduler, hunt
from repro.analysis.report import validate_report
from repro.detect import detect_races, detect_races_online, online_capable
from repro.pinplay import replay
from repro.serve import PinballStore, WorkerPool
from repro.workloads.pointers import POINTER_BUGS

from tests.support.progen import build_program, record_pinball

DIFF_SEEDS = range(10)


def _race_key(races):
    return sorted((race.site_pair(), race.kind, race.first_instance,
                   race.second_instance) for race in races)


class TestOnlineTracedEquivalence:
    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_same_races_both_paths(self, seed):
        from repro import config
        if config.engine() != "predecoded":
            pytest.skip("online detection needs the predecoded engine")
        program = build_program(seed)
        pinball = record_pinball(program, seed)
        assert online_capable(pinball)
        traced = detect_races(pinball, program, online=False)
        online = detect_races_online(pinball, program)
        assert _race_key(traced) == _race_key(online)

    def test_online_dispatch_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DETECT_ONLINE", raising=False)
        program = build_program(3)
        pinball = record_pinball(program, 3)
        # detect_races() resolves through the knob (default True) and
        # must agree with the forced traced path.
        assert _race_key(detect_races(pinball, program)) == _race_key(
            detect_races(pinball, program, online=False))


class TestHuntDeterminism:
    @pytest.mark.parametrize("seed", DIFF_SEEDS)
    def test_classification_is_deterministic(self, seed):
        program = build_program(seed)
        pinball = record_pinball(program, seed)
        first = hunt(pinball, program, budget=4, profile_seeds=2,
                     minimize_budget=6, slice_reports=False)
        second = hunt(pinball, program, budget=4, profile_seeds=2,
                      minimize_budget=6, slice_reports=False)
        validate_report(first.payload())
        assert first.payload() == second.payload()
        assert sorted(first.minimized) == sorted(second.minimized)
        for cid, minimized in first.minimized.items():
            assert minimized.to_bytes(compress=False) == \
                second.minimized[cid].to_bytes(compress=False)


@pytest.fixture(scope="module")
def exposed_uaf():
    """The use-after-free analog exposed into a failing recording."""
    bug = POINTER_BUGS["uaf_chase"]
    program = bug.build()
    pinball, seed = bug.expose(program)
    assert pinball is not None
    return bug, program, pinball


class TestMinimizedPinball:
    def test_minimized_pinball_still_reproduces(self, exposed_uaf):
        bug, program, pinball = exposed_uaf
        result = hunt(pinball, program, budget=4, profile_seeds=2,
                      minimize_budget=12)
        crashes = [f for f in result.findings if f.outcome == "crash"]
        assert crashes and crashes[0].failure_code == bug.failure_code
        minimized = result.minimized[crashes[0].candidate]
        _machine, rp = replay(minimized, program)
        assert rp.failure and rp.failure["code"] == bug.failure_code
        # The slice report reaches the freeing/racing source lines.
        report = crashes[0].slice_report
        assert report is not None and report.instance_count > 0
        failing_line = program.line_of(crashes[0].failure["pc"])
        assert failing_line in report.lines

    def test_perturbed_scheduler_tolerates_mutations(self, exposed_uaf):
        _bug, program, pinball = exposed_uaf
        # Chop the recorded schedule in half and scramble the tail: the
        # lenient follower must still drive a complete run.
        runs = [list(run) for run in pinball.schedule]
        mutant = runs[:max(1, len(runs) // 2)] + [[99, 5]]
        from repro.analysis.hunt import hunt_context, _execute
        ctx = hunt_context(pinball, program)
        rerun = _execute(program, PerturbedScheduler(mutant), ctx)
        assert rerun.total_steps > 0


class TestServedHunt:
    @pytest.fixture(scope="class")
    def stocked(self, tmp_path_factory, exposed_uaf):
        bug, program, pinball = exposed_uaf
        root = str(tmp_path_factory.mktemp("hunt-store"))
        store = PinballStore(root)
        source_sha = store.put_source(bug.source(), program.name,
                                      tags=("hunt",))
        key = store.put_pinball(pinball, tags=("hunt",),
                                meta={"source_sha": source_sha})
        return store, key, source_sha, program.name

    def _hunt_params(self, stocked):
        _store, key, source_sha, name = stocked
        return {"pinball": key, "source": source_sha,
                "program_name": name, "budget": 4, "profile_seeds": 2,
                "minimize_budget": 12}

    def test_worker_hunt_matches_in_process(self, stocked, exposed_uaf):
        _bug, program, pinball = exposed_uaf
        store, _key, _sha, _name = stocked
        local = hunt(pinball, program, budget=4, profile_seeds=2,
                     minimize_budget=12)
        with WorkerPool(store.root, workers=2, default_timeout=120) as pool:
            served = pool.call("hunt", self._hunt_params(stocked),
                               timeout=120)
        minimized_raw = served.pop("minimized_raw")
        validate_report(served)
        local_payload = local.payload()
        assert served["finding_count"] == local_payload["finding_count"]
        assert served["findings"] == local_payload["findings"]
        for cid, raw in minimized_raw.items():
            assert raw == local.minimized[cid].to_bytes(compress=False)

    def test_worker_killed_mid_hunt_loses_no_findings(self, stocked,
                                                      exposed_uaf):
        """Chaos rider: SIGKILL the lone worker while it hunts; the pool
        respawns it and requeues the request — the answer is complete
        and identical to an undisturbed hunt."""
        _bug, program, pinball = exposed_uaf
        store, _key, _sha, _name = stocked
        baseline = hunt(pinball, program, budget=4, profile_seeds=2,
                        minimize_budget=12)
        with WorkerPool(store.root, workers=1, default_timeout=180) as pool:
            victim_pid = pool.call("ping", {}, timeout=30)["pid"]
            future = pool.submit("hunt", self._hunt_params(stocked),
                                 timeout=180)
            time.sleep(0.25)
            os.kill(victim_pid, signal.SIGKILL)
            served = future.result(timeout=180)
            assert pool.stats()["crashes"] >= 1
        minimized_raw = served.pop("minimized_raw")
        validate_report(served)
        assert served["findings"] == baseline.payload()["findings"]
        for cid, raw in minimized_raw.items():
            assert raw == baseline.minimized[cid].to_bytes(compress=False)
