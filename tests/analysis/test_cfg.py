"""Unit tests for CFG construction and indirect-jump refinement."""

import pytest

from repro.analysis import build_cfg
from repro.analysis.cfg import EXIT_BLOCK
from repro.isa import assemble
from repro.isa.instructions import Opcode
from repro.lang import compile_source


def cfg_of(source, func, lang="asm"):
    program = assemble(source) if lang == "asm" else compile_source(source)
    return program, build_cfg(program, func)


class TestBasicBlocks:
    def test_straight_line_single_block(self):
        program, cfg = cfg_of("""
func main
  mov r0, 1
  add r0, r0, 1
  halt
""", "main")
        assert cfg.block_count() == 1
        block = cfg.blocks[0]
        assert block.succs == {EXIT_BLOCK}

    def test_branch_splits_blocks(self):
        program, cfg = cfg_of("""
func main
  mov r0, 1
  br r0, yes
  mov r1, 0
  halt
yes:
  mov r1, 1
  halt
""", "main")
        assert cfg.block_count() == 3
        entry = cfg.block_of(0)
        assert len(entry.succs) == 2

    def test_loop_back_edge(self):
        program, cfg = cfg_of("""
func main
  mov r0, 5
loop:
  sub r0, r0, 1
  br r0, loop
  halt
""", "main")
        loop_block = cfg.block_of(1)
        assert loop_block.id in loop_block.succs

    def test_call_is_fallthrough(self):
        program, cfg = cfg_of("""
func f
  ret
func main
  call f
  halt
""", "main")
        entry = program.functions["main"].entry
        block = cfg.block_of(entry)
        # call does not end a block edge-wise... it falls through.
        assert EXIT_BLOCK in block.succs or len(block.succs) == 1

    def test_preds_consistent_with_succs(self):
        program, cfg = cfg_of("""
func main
  mov r0, 1
  br r0, a
  jmp b
a:
  nop
b:
  halt
""", "main")
        for block in cfg.blocks.values():
            for succ in block.succs:
                if succ != EXIT_BLOCK:
                    assert block.id in cfg.blocks[succ].preds


class TestIndirectJumps:
    SOURCE = """
.data jt = c0 c1 c2
func main
  mov r0, 1
  lea r1, jt
  add r1, r1, r0
  ld r1, [r1]
  ijmp r1
c0:
  nop
  jmp end
c1:
  nop
  jmp end
c2:
  nop
end:
  halt
"""

    def test_static_ijmp_has_no_successors(self):
        program, cfg = cfg_of(self.SOURCE, "main")
        ijmp_addr = next(i.addr for i in program.instructions
                         if i.op == Opcode.IJMP)
        block = cfg.block_of(ijmp_addr)
        assert block.succs == set()

    def test_refinement_adds_edges(self):
        program, cfg = cfg_of(self.SOURCE, "main")
        ijmp_addr = next(i.addr for i in program.instructions
                         if i.op == Opcode.IJMP)
        target = program.resolve_symbol("main.c1")
        assert cfg.add_indirect_target(ijmp_addr, target)
        block = cfg.block_of(ijmp_addr)
        assert cfg.block_of(target).id in block.succs

    def test_refinement_idempotent(self):
        program, cfg = cfg_of(self.SOURCE, "main")
        ijmp_addr = next(i.addr for i in program.instructions
                         if i.op == Opcode.IJMP)
        target = program.resolve_symbol("main.c0")
        assert cfg.add_indirect_target(ijmp_addr, target)
        assert not cfg.add_indirect_target(ijmp_addr, target)

    def test_refinement_splits_midblock_target(self):
        # A fallthrough case label is not a static leader; refinement must
        # split its containing block.
        source = """
.data jt = c0 c1
func main
  mov r0, 0
  lea r1, jt
  add r1, r1, r0
  ld r1, [r1]
  ijmp r1
c0:
  nop
c1:
  nop
  halt
"""
        program, cfg = cfg_of(source, "main")
        ijmp_addr = next(i.addr for i in program.instructions
                         if i.op == Opcode.IJMP)
        c1 = program.resolve_symbol("main.c1")
        before = cfg.block_count()
        cfg.add_indirect_target(ijmp_addr, c1)
        assert cfg.block_count() == before + 1
        assert cfg.block_of(c1).start == c1
        # Fallthrough from the split-off c0 block into c1's block.
        c0 = program.resolve_symbol("main.c0")
        assert cfg.block_of(c1).id in cfg.block_of(c0).succs

    def test_refinement_invalidates_ipostdom_cache(self):
        program, cfg = cfg_of(self.SOURCE, "main")
        ijmp_addr = next(i.addr for i in program.instructions
                         if i.op == Opcode.IJMP)
        assert cfg.ipostdom_addr(ijmp_addr) is None
        for label in ("c0", "c1", "c2"):
            cfg.add_indirect_target(
                ijmp_addr, program.resolve_symbol("main." + label))
        end = program.resolve_symbol("main.end")
        assert cfg.ipostdom_addr(ijmp_addr) == end


class TestMiniCCfg:
    def test_every_function_gets_a_cfg(self):
        source = """
int f(int x) { if (x) { return 1; } return 2; }
int main() { return f(3); }
"""
        program = compile_source(source)
        for name in program.functions:
            cfg = build_cfg(program, name)
            assert cfg.block_count() >= 1

    def test_if_else_diamond(self):
        source = """
int main() {
    int x; int y;
    x = input();
    if (x) { y = 1; } else { y = 2; }
    print(y);
    return 0;
}
"""
        program = compile_source(source)
        cfg = build_cfg(program, "main")
        branches = [i for i in program.functions["main"].instrs
                    if i.op in (Opcode.BR, Opcode.BRZ)]
        assert branches
        # The branch's region ends at the join point, not at exit.
        assert cfg.ipostdom_addr(branches[0].addr) is not None
