"""Round-trip properties: disassemble → reassemble → same behaviour.

The disassembler emits the same dialect the assembler accepts, so any
compiled MiniC program must survive a listing round-trip with identical
observable behaviour (output, failure, final globals).  Line debug info is
deliberately not preserved by listings, so only behaviour is compared.
"""

import re

from hypothesis import given, settings, strategies as st

from repro.isa import assemble, disassemble
from repro.lang import compile_source
from repro.vm import Machine, RoundRobinScheduler

PROGRAMS = [
    # Arithmetic + control flow + calls.
    """
int g;
int fact(int n) {
    if (n < 2) { return 1; }
    return n * fact(n - 1);
}
int main() {
    g = fact(6);
    print(g);
    return 0;
}
""",
    # Switch with a jump table (data defs with code labels).
    """
int f(int x) {
    switch (x) {
        case 0: return 10;
        case 1: return 20;
        case 2: return 30;
        default: return -1;
    }
}
int main() {
    int i;
    for (i = 0; i < 4; i = i + 1) { print(f(i)); }
    return 0;
}
""",
    # Threads, locks, arrays, global initialisers.
    """
int acc; int m;
int weights[4] = {1, 2, 3, 4};
int worker(int base) {
    int i;
    for (i = 0; i < 4; i++) {
        lock(&m);
        acc += weights[i] * base;
        unlock(&m);
    }
    return 0;
}
int main() {
    int t;
    t = spawn(worker, 10);
    worker(1);
    join(t);
    print(acc);
    return 0;
}
""",
]


def strip_listing(text):
    """Remove the informational comments the assembler would ignore anyway
    (kept here to prove the raw listing itself assembles)."""
    return text


def behaviour(program, inputs=()):
    machine = Machine(program, scheduler=RoundRobinScheduler(),
                      inputs=list(inputs))
    machine.run(max_steps=2_000_000)
    return (list(machine.output),
            None if machine.failure is None else machine.failure["code"],
            sorted(machine.memory.nonzero_items())[:50])


class TestListingRoundTrip:
    @given(st.sampled_from(range(len(PROGRAMS))),
           st.lists(st.integers(0, 5), max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_reassembled_listing_behaves_identically(self, index, inputs):
        source = PROGRAMS[index]
        original = compile_source(source, name="roundtrip")
        listing = disassemble(original, assembleable=True)
        reassembled = assemble(listing, name="roundtrip")
        assert behaviour(original, inputs) == behaviour(reassembled, inputs)

    def test_listing_of_listing_is_stable(self):
        original = compile_source(PROGRAMS[1], name="stable")
        once = disassemble(original, assembleable=True)
        twice = disassemble(assemble(once, name="stable"),
                            assembleable=True)
        # Code sections must be identical (modulo the lost line comments).
        def code_only(text):
            return [re.sub(r"\s*;.*$", "", line) for line in text.splitlines()
                    if not line.strip().startswith((".",))]
        assert code_only(once) == code_only(twice)
