"""Property tests on dynamic-slice invariants.

For random schedules of a racy program and random criteria:

* the slice is *closed*: every control parent and every data producer of a
  slice node is itself a slice node;
* slicing is deterministic and a fixpoint (re-slicing the criterion over
  the same trace yields the same node set);
* pruning and LP block size never change what matters (pruning only
  shrinks; block size changes nothing);
* the criterion is always in its own slice, and all nodes precede it in
  the global order.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RandomScheduler

from tests.conftest import FIG5_SOURCE

RACY_MIX = """
int a; int b; int m;
int left(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        lock(&m);
        a = a + b;
        unlock(&m);
    }
    return a;
}
int right(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        b = b + 1;
        yield();
    }
    return b;
}
int main() {
    int t1; int t2;
    b = 1;
    t1 = spawn(left, 5);
    t2 = spawn(right, 7);
    join(t1); join(t2);
    print(a); print(b);
    return 0;
}
"""


def make_session(seed, options=None):
    program = compile_source(RACY_MIX, name="racy-mix")
    pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=0.3), RegionSpec())
    return SlicingSession(pinball, program, options or SliceOptions())


class TestClosure:
    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_slice_closed_under_dependences(self, seed, nth_read):
        session = make_session(seed)
        reads = session.last_reads(nth_read)
        criterion = reads[-1]
        dslice = session.slice_for(criterion)

        assert criterion in dslice
        store = session.collector.store
        for instance in dslice.nodes:
            record = store.get(instance)
            if record.cd is not None:
                assert record.cd in dslice, "control parent escaped slice"
        for consumer, producer, _kind, _loc in dslice.edges:
            assert consumer in dslice
            assert producer in dslice

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_all_nodes_precede_criterion(self, seed):
        session = make_session(seed)
        criterion = session.last_reads(1)[0]
        dslice = session.slice_for(criterion)
        crit_gpos = session.collector.store.get(criterion).gpos
        for instance in dslice.nodes:
            assert session.collector.store.get(instance).gpos <= crit_gpos


class TestDeterminismAndFixpoint:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_reslicing_is_identical(self, seed):
        session = make_session(seed)
        criterion = session.last_reads(3)[-1]
        first = session.slice_for(criterion)
        second = session.slice_for(criterion)
        assert set(first.nodes) == set(second.nodes)
        assert len(first.edges) == len(second.edges)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_two_sessions_agree(self, seed):
        """Slices survive across debug sessions (PinPlay repeatability)."""
        s1 = make_session(seed)
        s2 = make_session(seed)
        criterion = s1.last_reads(1)[0]
        assert set(s1.slice_for(criterion).nodes) == set(
            s2.slice_for(criterion).nodes)


class TestOptionInvariants:
    @given(st.integers(min_value=0, max_value=100),
           st.sampled_from([1, 16, 256, 8192]))
    @settings(max_examples=15, deadline=None)
    def test_block_size_is_pure_performance(self, seed, block_size):
        baseline = make_session(seed)
        variant = make_session(
            seed, SliceOptions(block_size=block_size))
        criterion = baseline.last_reads(1)[0]
        assert set(baseline.slice_for(criterion).nodes) == set(
            variant.slice_for(criterion).nodes)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_pruning_only_shrinks(self, seed):
        pruned_session = make_session(
            seed, SliceOptions(prune_save_restore=True))
        unpruned_session = make_session(
            seed, SliceOptions(prune_save_restore=False))
        criterion = pruned_session.last_reads(1)[0]
        pruned = pruned_session.slice_for(criterion)
        unpruned = unpruned_session.slice_for(criterion)
        assert set(pruned.nodes) <= set(unpruned.nodes)
        assert criterion in pruned

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_refinement_only_grows(self, seed):
        refined = make_session(seed, SliceOptions(refine_cfg=True))
        unrefined = make_session(seed, SliceOptions(refine_cfg=False))
        criterion = refined.last_reads(1)[0]
        assert set(unrefined.slice_for(criterion).nodes) <= set(
            refined.slice_for(criterion).nodes)


class TestSlicePinballFidelity:
    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=8, deadline=None)
    def test_slice_replay_preserves_failure(self, seed):
        """If the region pinball failed, the slice pinball for the failure
        slice must fail identically when replayed."""
        from repro.pinplay import replay
        program = compile_source(FIG5_SOURCE, name="fig5-prop")
        pinball = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.4),
            RegionSpec())
        if pinball.meta.get("failure") is None:
            return  # benign schedule; nothing to check
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        slice_pb = session.make_slice_pinball(dslice)
        machine, result = replay(slice_pb, program, verify=False)
        assert result.failure is not None
        assert result.failure["code"] == pinball.meta["failure"]["code"]
