"""Property tests for the central invariant: replay is exact.

For arbitrary scheduling seeds, preemption rates, inputs, and region
bounds, recording an execution and replaying its pinball must reproduce
the output, the failure (if any), and the full architectural state hash.
This is the paper's repeatability guarantee, on which slices-across-
sessions and cyclic debugging both rest.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.pinplay import Pinball, RegionSpec, record_region, replay
from repro.pinplay.pinball import state_hash
from repro.vm import RandomScheduler

from tests.conftest import FIG5_SOURCE
from tests.support.progen import generate_source

#: A menagerie of concurrency shapes: racy counters, locks, sleeps,
#: nondeterministic syscalls, producer/consumer.
PROGRAMS = {
    "racy-counter": """
int x;
int bump(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { x = x + 1; }
    return x;
}
int main() {
    int a; int b;
    a = spawn(bump, 12);
    b = spawn(bump, 12);
    join(a); join(b);
    print(x);
    return 0;
}
""",
    "locked-counter": """
int x; int m;
int bump(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        lock(&m);
        x = x + 1;
        unlock(&m);
    }
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 8);
    b = spawn(bump, 8);
    join(a); join(b);
    print(x);
    return 0;
}
""",
    "nondet-soup": """
int acc;
int worker(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + rand(7) + input();
        sleep(i % 3);
    }
    return acc;
}
int main() {
    int t;
    t = spawn(worker, 6);
    acc = acc + time() % 13;
    print(join(t));
    print(acc);
    return 0;
}
""",
    "fig5": FIG5_SOURCE,
}

#: Plus a few programs from the shared randomized generator — the same
#: shapes (locks, races, switch lowering, nondet syscalls) the engine and
#: index differential suites exercise.
PROGRAMS.update(
    ("progen-%d" % seed, generate_source(seed)) for seed in (0, 3, 7))


@st.composite
def scenario(draw):
    name = draw(st.sampled_from(sorted(PROGRAMS)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    switch_prob = draw(st.sampled_from([0.02, 0.1, 0.3, 0.6]))
    inputs = draw(st.lists(st.integers(-5, 5), max_size=10))
    rand_seed = draw(st.integers(min_value=0, max_value=1_000))
    return name, seed, switch_prob, inputs, rand_seed


class TestWholeProgramReplay:
    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_replay_reproduces_everything(self, scn):
        name, seed, switch_prob, inputs, rand_seed = scn
        program = compile_source(PROGRAMS[name], name=name)
        pinball = record_region(
            program, RandomScheduler(seed=seed, switch_prob=switch_prob),
            RegionSpec(), inputs=inputs, rand_seed=rand_seed)
        machine, result = replay(pinball, program)   # verify=True inside
        assert machine.output == pinball.meta["output"]
        assert state_hash(machine) == pinball.meta["final_state_hash"]
        assert (result.failure is None) == (pinball.meta["failure"] is None)

    @given(scenario())
    @settings(max_examples=20, deadline=None)
    def test_pinball_serialization_preserves_replay(self, scn):
        name, seed, switch_prob, inputs, rand_seed = scn
        program = compile_source(PROGRAMS[name], name=name)
        pinball = record_region(
            program, RandomScheduler(seed=seed, switch_prob=switch_prob),
            RegionSpec(), inputs=inputs, rand_seed=rand_seed)
        clone = Pinball.from_bytes(pinball.to_bytes())
        machine, _result = replay(clone, program)
        assert machine.output == pinball.meta["output"]


class TestRegionReplay:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=400),
           st.integers(min_value=10, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_regions_replay_exactly(self, seed, skip, length):
        program = compile_source(PROGRAMS["racy-counter"], name="regions")
        pinball = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.2),
            RegionSpec(skip=skip, length=length))
        machine, _result = replay(pinball, program)
        assert state_hash(machine) == pinball.meta["final_state_hash"]
        # The region retired exactly what the log says.
        for tid, thread in machine.threads.items():
            assert thread.instr_count == pinball.thread_instructions(tid)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_region_is_suffix_consistent_with_whole_run(self, seed):
        """Recording with a skip then replaying yields the same final
        state as the uninterrupted run under the same seed."""
        program = compile_source(PROGRAMS["locked-counter"], name="suffix")
        whole = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.15),
            RegionSpec())
        partial = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.15),
            RegionSpec(skip=50))
        machine, _ = replay(partial, program)
        # The region ends in the same final state as the whole run...
        assert state_hash(machine) == whole.meta["final_state_hash"]
        # ...and, if the region is nonempty, the final print matches
        # (a skip past program end legitimately records an empty region).
        if partial.total_steps > 0:
            assert machine.output[-1:] == whole.meta["output"][-1:]
