"""Property tests: compiled MiniC arithmetic agrees with a Python oracle.

Hypothesis generates random integer expressions over the operators whose
semantics MiniC shares exactly with Python (``+ - * & | ^ << >>`` and
comparisons); each is compiled, executed on the VM, and compared with
Python's evaluation of the same expression.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.vm import Machine


def exprs(depth):
    """Strategy producing expression strings valid in MiniC and Python."""
    leaf = st.integers(min_value=-50, max_value=50).map(
        lambda n: "(%d)" % n)
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    binary = st.tuples(
        st.sampled_from(["+", "-", "*", "&", "|", "^"]), sub, sub
    ).map(lambda t: "(%s %s %s)" % (t[1], t[0], t[2]))
    shift = st.tuples(
        st.sampled_from(["<<", ">>"]), sub,
        st.integers(min_value=0, max_value=6)
    ).map(lambda t: "(%s %s %d)" % (t[1], t[0], t[2]))
    compare = st.tuples(
        st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), sub, sub
    ).map(lambda t: "(%s %s %s)" % (t[1], t[0], t[2]))
    negate = sub.map(lambda e: "(-%s)" % e)
    return st.one_of(leaf, binary, shift, compare, negate)


def run_expression(text):
    program = compile_source(
        "int main() { print(%s); return 0; }" % text)
    machine = Machine(program)
    machine.run(max_steps=1_000_000)
    assert machine.failure is None
    return machine.output[0]


class TestExpressionOracle:
    @given(exprs(3))
    @settings(max_examples=200, deadline=None)
    def test_expression_matches_python(self, text):
        expected = int(eval(text))
        assert run_expression(text) == expected

    @given(exprs(5))
    @settings(max_examples=50, deadline=None)
    def test_deep_expressions_spill_correctly(self, text):
        # Deeper trees exercise the register-spill path.
        expected = int(eval(text))
        assert run_expression(text) == expected


class TestStatementOracle:
    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_array_sum_loop(self, values):
        inits = ", ".join(str(v) for v in values)
        source = """
int data[%d] = {%s};
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < %d; i = i + 1) { s = s + data[i]; }
    print(s);
    return 0;
}
""" % (len(values), inits, len(values))
        program = compile_source(source)
        machine = Machine(program)
        machine.run(max_steps=1_000_000)
        assert machine.output == [sum(values)]

    @given(st.integers(min_value=0, max_value=12))
    @settings(max_examples=13, deadline=None)
    def test_recursive_fib_matches(self, n):
        source = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(%d)); return 0; }
""" % n
        def fib(k):
            a, b = 0, 1
            for _ in range(k):
                a, b = b, a + b
            return a
        program = compile_source(source)
        machine = Machine(program)
        machine.run(max_steps=5_000_000)
        assert machine.output == [fib(n)]

    @given(st.lists(st.sampled_from([0, 1, 2, 3, 4, 5]), min_size=1,
                    max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_switch_matches_dict_dispatch(self, inputs):
        source = """
int classify(int x) {
    switch (x) {
        case 0: return 100;
        case 1: return 200;
        case 2: return 300;
        case 3: return 400;
        default: return -1;
    }
}
int main() {
    int i; int v;
    for (i = 0; i < %d; i = i + 1) {
        v = input();
        print(classify(v));
    }
    return 0;
}
""" % len(inputs)
        table = {0: 100, 1: 200, 2: 300, 3: 400}
        program = compile_source(source)
        machine = Machine(program, inputs=inputs)
        machine.run(max_steps=1_000_000)
        assert machine.output == [table.get(v, -1) for v in inputs]
