"""Unit tests for the relogger and slice-pinball replay (exclusion skips)."""

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, relog, replay
from repro.vm import RandomScheduler, ReplayDivergence, RoundRobinScheduler


PROGRAM = """
int a; int b; int c;
int main() {
    int i;
    for (i = 0; i < 30; i = i + 1) {
        a = a + 1;
        b = b + 2;
        c = c + 3;
    }
    print(a); print(b); print(c);
    return 0;
}
"""


def record_simple():
    program = compile_source(PROGRAM)
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    return program, pinball


class TestRelog:
    def test_keep_everything_is_identity(self):
        program, pinball = record_simple()
        keep = {0: set(range(pinball.thread_instructions(0)))}
        slice_pb = relog(pinball, program, keep)
        assert slice_pb.meta["excluded_runs"] == 0
        machine, _ = replay(slice_pb, program, verify=False)
        assert machine.output == pinball.meta["output"]

    def test_keep_nothing_still_keeps_syscalls_and_exit(self):
        program, pinball = record_simple()
        slice_pb = relog(pinball, program, {0: set()})
        assert slice_pb.meta["kept_instructions"] > 0
        assert slice_pb.meta["kept_instructions"] < pinball.total_instructions
        machine, _ = replay(slice_pb, program, verify=False)
        # Syscalls are always kept, so the prints still happen — with the
        # values the excluded computation produced (via injection).
        assert machine.output == pinball.meta["output"]

    def test_exclusion_metadata(self):
        program, pinball = record_simple()
        slice_pb = relog(pinball, program, {0: set()})
        assert slice_pb.kind == "slice"
        assert slice_pb.meta["excluded_runs"] == len(slice_pb.exclusions)
        for record in slice_pb.exclusions:
            assert record["excluded_count"] > 0
            assert "regs" in record and "mem" in record

    def test_side_effects_injected(self):
        program, pinball = record_simple()
        slice_pb = relog(pinball, program, {0: set()})
        machine, _ = replay(slice_pb, program, verify=False)
        # Final memory state of the excluded computation is reproduced.
        assert machine.read_global("a") == 30
        assert machine.read_global("b") == 60
        assert machine.read_global("c") == 90

    def test_skip_counter_matches_runs(self):
        program, pinball = record_simple()
        slice_pb = relog(pinball, program, {0: set()})
        machine, _ = replay(slice_pb, program, verify=False)
        assert machine.skipped_exclusions == slice_pb.meta["excluded_runs"]

    def test_schedule_shrinks(self):
        program, pinball = record_simple()
        slice_pb = relog(pinball, program, {0: set()})
        assert slice_pb.total_steps < pinball.total_steps


class TestMultithreadedRelog:
    SOURCE = """
int x; int y; int mtx;
int worker(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        lock(&mtx);
        x = x + 1;
        unlock(&mtx);
        y = y + 1;
    }
    return 0;
}
int main() {
    int a; int b;
    a = spawn(worker, 10);
    b = spawn(worker, 10);
    join(a); join(b);
    print(x);
    return 0;
}
"""

    def test_locks_survive_exclusion(self):
        # Excluding worker arithmetic must not desync the lock schedule,
        # because sync syscalls are never excluded.
        program = compile_source(self.SOURCE)
        pinball = record_region(
            program, RandomScheduler(seed=4, switch_prob=0.3), RegionSpec())
        slice_pb = relog(pinball, program, {})
        machine, result = replay(slice_pb, program, verify=False)
        assert machine.output == pinball.meta["output"]

    def test_values_at_kept_instructions_match_full_replay(self):
        # Keep thread 1's increments of x; its reads must see the same
        # values as in the full replay (cross-thread writes it depends on
        # are injected or kept).
        program = compile_source(self.SOURCE)
        pinball = record_region(
            program, RandomScheduler(seed=4, switch_prob=0.3), RegionSpec())

        from repro.vm.hooks import Tool

        class XWatch(Tool):
            wants_instr_events = True
            def __init__(self, x_addr):
                self.x_addr = x_addr
                self.reads = []
            def on_instr(self, event):
                for addr, value in event.mem_reads:
                    if addr == self.x_addr:
                        self.reads.append((event.tid, value))

        x_addr = program.globals["x"].addr
        full_watch = XWatch(x_addr)
        replay(pinball, program, tools=[full_watch], verify=False)

        keep = {1: set(range(pinball.thread_instructions(1)))}
        slice_pb = relog(pinball, program, keep)
        slice_watch = XWatch(x_addr)
        replay(slice_pb, program, tools=[slice_watch], verify=False)

        full_t1 = [v for tid, v in full_watch.reads if tid == 1]
        slice_t1 = [v for tid, v in slice_watch.reads if tid == 1]
        assert slice_t1 == full_t1
