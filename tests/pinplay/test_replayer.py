"""Unit tests for deterministic replay."""

import pytest

from repro.lang import compile_source
from repro.pinplay import (
    Pinball,
    RegionSpec,
    SyscallInjector,
    record_region,
    replay,
    replay_machine,
)
from repro.pinplay.pinball import state_hash
from repro.vm import RandomScheduler, ReplayDivergence, RoundRobinScheduler

NONDET_PROGRAM = """
int shared; int mtx;
int worker(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        lock(&mtx);
        shared = shared + rand(5);
        unlock(&mtx);
    }
    return 0;
}
int main() {
    int a; int b;
    a = spawn(worker, 15);
    b = spawn(worker, 15);
    print(input());
    join(a); join(b);
    print(shared);
    print(time());
    return 0;
}
"""


def record(seed=3, **kwargs):
    program = compile_source(NONDET_PROGRAM)
    pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=0.2),
        RegionSpec(), inputs=[42], rand_seed=seed, **kwargs)
    return program, pinball


class TestReplay:
    def test_output_and_state_reproduced(self):
        program, pinball = record()
        machine, result = replay(pinball, program)
        assert machine.output == pinball.meta["output"]
        assert state_hash(machine) == pinball.meta["final_state_hash"]

    def test_replay_injects_rather_than_recomputes(self):
        # A replay machine starts with rand_seed=0 and no inputs; only
        # injection can reproduce the recorded values.
        program, pinball = record(seed=9)
        machine, _ = replay(pinball, program)
        assert machine.output == pinball.meta["output"]

    def test_replay_twice_identical(self):
        program, pinball = record()
        m1, _ = replay(pinball, program)
        m2, _ = replay(pinball, program)
        assert m1.output == m2.output
        assert state_hash(m1) == state_hash(m2)

    def test_wrong_program_rejected(self):
        program, pinball = record()
        other = compile_source("int main() { return 0; }", name="other")
        with pytest.raises(ReplayDivergence):
            replay(pinball, other)

    def test_tampered_snapshot_detected(self):
        program, pinball = record()
        # Corrupt one memory word in the initial snapshot.
        words = pinball.snapshot["memory"]["words"]
        words.append([999, 12345])
        with pytest.raises(ReplayDivergence):
            replay(pinball, program, verify=True)

    def test_verify_can_be_disabled(self):
        program, pinball = record()
        pinball.snapshot["memory"]["words"].append([999, 12345])
        machine, _ = replay(pinball, program, verify=False)
        assert machine.memory.read(999) == 12345

    def test_failure_reproduced_on_replay(self, fig5):
        program, pinball, _seed = fig5
        machine, result = replay(pinball, program)
        assert result.failure is not None
        assert result.failure == pinball.meta["failure"]

    def test_replay_machine_allows_partial_runs(self):
        program, pinball = record()
        machine = replay_machine(pinball, program)
        machine.run(max_steps=10)
        machine.run(max_steps=pinball.total_steps - 10)
        assert machine.output == pinball.meta["output"]


class TestSyscallInjector:
    def test_in_order_injection(self):
        injector = SyscallInjector({0: [("input", 1), ("rand", 2)]})
        assert injector.inject("input", 0) == 1
        assert injector.inject("rand", 0) == 2
        assert injector.drained

    def test_order_divergence_detected(self):
        injector = SyscallInjector({0: [("input", 1)]})
        with pytest.raises(ReplayDivergence):
            injector.inject("rand", 0)

    def test_exhaustion_detected(self):
        injector = SyscallInjector({0: []})
        with pytest.raises(ReplayDivergence):
            injector.inject("input", 0)

    def test_per_thread_queues_independent(self):
        injector = SyscallInjector({0: [("input", 1)], 1: [("input", 9)]})
        assert injector.inject("input", 1) == 9
        assert injector.inject("input", 0) == 1
