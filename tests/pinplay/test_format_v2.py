"""Format v2 container: framing, laziness, diagnostics, conversion.

The corrupt-frame suite mirrors the store's integrity tests: every way a
v2 container can be structurally broken raises the one typed
:class:`PinballFormatError` naming the frame kind, the byte offset and
the source — and the CLI turns that into exit 65.
"""

import io

import pytest

from repro.pinplay import Pinball, PinballFormatError
from repro.pinplay.format_v2 import (FRAME_NAMES, K_META, K_PROLOGUE,
                                     K_SCHEDULE, MAGIC, LazyPinball,
                                     PinballWriter, frame_chunks,
                                     open_pinball, scan_frames)
from repro.pinplay.pinball import state_hash
from repro.pinplay.replayer import generate_checkpoints, replay
from tests.support.progen import build_program, record_pinball

SEED = 7


@pytest.fixture(scope="module")
def recorded():
    program = build_program(SEED)
    pinball = record_pinball(program, SEED, pinball_format="v2",
                             checkpoint_interval=50)
    return program, pinball


@pytest.fixture(scope="module")
def blob(recorded):
    _program, pinball = recorded
    return pinball.to_bytes(format="v2")


# -- framing ------------------------------------------------------------------

class TestFraming:
    def test_magic_and_prologue(self, blob):
        assert blob[:4] == MAGIC
        frames = scan_frames(blob)
        assert frames[0].kind == K_PROLOGUE
        assert frames[-1].kind == K_META

    def test_frame_chunks_reassemble_exactly(self, blob):
        chunks = frame_chunks(blob)
        assert MAGIC + b"".join(chunks) == blob

    def test_deterministic_encoding(self, recorded):
        _program, pinball = recorded
        assert pinball.to_bytes(format="v2") == pinball.to_bytes(
            format="v2")

    def test_writer_and_encoder_agree(self, recorded, blob):
        """Streaming the sections through a PinballWriter produces the
        same container bytes as the in-memory encoder."""
        _program, pinball = recorded
        interval = (pinball.checkpoints[0].steps_done
                    if pinball.checkpoints else 0)
        out = io.BytesIO()
        writer = PinballWriter(out, pinball.program_name,
                               checkpoint_interval=interval)
        writer.write_snapshot(pinball.snapshot)
        for checkpoint in pinball.checkpoints:
            writer.write_checkpoint(checkpoint.steps_done,
                                    checkpoint.global_seq,
                                    checkpoint.body())
        writer.write_schedule(pinball.schedule)
        writer.write_mem_order(pinball.mem_order)
        writer.write_syscalls(pinball.syscalls)
        writer.write_meta(pinball.meta)
        # Same frames, not necessarily the same order: compare the
        # reopened sections instead of raw bytes.
        reopened = open_pinball(out.getvalue())
        assert list(reopened.schedule) == list(pinball.schedule)
        assert list(reopened.mem_order) == list(pinball.mem_order)
        assert reopened.syscalls == pinball.syscalls
        assert reopened.meta == pinball.meta
        assert len(reopened.checkpoints) == len(pinball.checkpoints)

    def test_prefix_frames_shared_with_longer_recording(self):
        """Deterministic chunking: a longer re-recording of the same
        program reproduces the shorter run's schedule/checkpoint frames
        byte-for-byte (what the store's per-frame dedup rests on)."""
        from repro.pinplay import RegionSpec, record_region
        from tests.support.progen import inputs_for, scheduler_for
        program = build_program(SEED)

        def chunks(length):
            pb = record_region(program, scheduler_for(SEED),
                               RegionSpec(length=length),
                               inputs=inputs_for(SEED), rand_seed=SEED,
                               pinball_format="v2", checkpoint_interval=40)
            return frame_chunks(pb.to_bytes(format="v2"))

        short, full = chunks(120), chunks(480)
        shared = set(short) & set(full)
        # Prologue + snapshot are identical; so are full interior
        # checkpoint frames of the common prefix.
        assert len(shared) >= 3


# -- laziness -----------------------------------------------------------------

class TestLazyOpen:
    def test_autodetected_and_lazy(self, blob):
        pinball = Pinball.from_bytes(blob)
        assert isinstance(pinball, LazyPinball)
        assert pinball.format == "v2"
        # Nothing decoded yet beyond the prologue.
        assert "schedule" not in pinball._cache
        assert "mem_order" not in pinball._cache
        _ = pinball.total_steps
        assert "schedule" in pinball._cache
        assert "mem_order" not in pinball._cache

    def test_checkpoint_bodies_load_on_demand(self, blob):
        pinball = Pinball.from_bytes(blob)
        checkpoints = pinball.checkpoints
        assert checkpoints, "recording should embed checkpoints"
        body = checkpoints[0].body()
        assert set(body) >= {"snapshot", "consumed", "global_seq",
                             "instr_counts", "output"}
        assert all(isinstance(tid, int) for tid in body["instr_counts"])
        assert all(isinstance(tid, int) for tid in body["consumed"])

    def test_replays_identically_to_eager(self, recorded, blob):
        program, pinball = recorded
        machine_eager, _ = replay(pinball, program)
        machine_lazy, _ = replay(Pinball.from_bytes(blob), program)
        assert state_hash(machine_eager) == state_hash(machine_lazy)
        assert machine_eager.output == machine_lazy.output

    def test_section_assignment_overrides(self, blob):
        pinball = Pinball.from_bytes(blob)
        pinball.meta = {"kind": "region", "patched": True}
        assert pinball.meta["patched"] is True

    def test_to_bytes_roundtrip_is_identity(self, blob):
        assert Pinball.from_bytes(blob).to_bytes() == blob

    def test_v1_conversion_roundtrip(self, recorded, blob):
        program, _pinball = recorded
        lazy = Pinball.from_bytes(blob)
        v1_blob = lazy.to_bytes(format="v1")
        assert v1_blob[:4] != MAGIC
        back = Pinball.from_bytes(v1_blob)
        assert back.format == "v1"
        assert list(back.schedule) == list(lazy.schedule)
        assert back.syscalls == lazy.syscalls
        assert back.meta == lazy.meta
        machine, _ = replay(back, program)
        machine2, _ = replay(lazy, program)
        assert state_hash(machine) == state_hash(machine2)


# -- checkpoint generation (convert path) -------------------------------------

class TestGenerateCheckpoints:
    def test_generated_match_recorded(self, recorded):
        """`repro convert` checkpoints are resume-equivalent to the
        recorder's: same positions, and resuming from either reaches the
        same final state.  (Bodies differ representationally: a replay
        never advances the live input/rng cursors — injection covers
        them — so only resume behaviour is contractual.)"""
        from repro.pinplay.replayer import resume_machine
        program, pinball = recorded
        generated = generate_checkpoints(pinball, program, 50)
        assert ([c.steps_done for c in generated]
                == [c.steps_done for c in pinball.checkpoints])
        reference, _ = replay(pinball, program)
        for checkpoint in (generated + list(pinball.checkpoints)):
            machine, _injector = resume_machine(pinball, program,
                                                checkpoint)
            machine.run(max_steps=pinball.total_steps
                        - checkpoint.steps_done)
            assert state_hash(machine) == state_hash(reference), (
                "resume from step %d diverged" % checkpoint.steps_done)
            assert machine.output == reference.output

    def test_interval_must_be_positive(self, recorded):
        program, pinball = recorded
        with pytest.raises(ValueError):
            generate_checkpoints(pinball, program, 0)


# -- corruption diagnostics ---------------------------------------------------

def _flip_crc(blob):
    """Corrupt one payload byte of the first SCHEDULE frame."""
    for ref in scan_frames(blob):
        if ref.kind == K_SCHEDULE:
            index = ref.start
            return blob[:index] + bytes([blob[index] ^ 0xFF]) \
                + blob[index + 1:]
    raise AssertionError("no schedule frame")


def _with_unknown_kind(blob):
    ref = scan_frames(blob)[1]
    return blob[:ref.offset] + b"\x63" + blob[ref.offset + 1:]


def _drop_prologue(blob):
    ref = scan_frames(blob)[0]
    return MAGIC + blob[ref.start + ref.length:]


def _drop_meta(blob):
    ref = scan_frames(blob)[-1]
    return blob[:ref.offset]


#: (name, mutate, fragments that must all appear in the error message)
CORRUPT_FRAMES = [
    ("bad-magic", lambda b: b"RPBX" + b[4:],
     ["v2 container", "byte offset 0", "bad magic"]),
    ("truncated-header", lambda b: b[:scan_frames(b)[-1].offset + 3],
     ["byte offset", "truncated frame header"]),
    ("truncated-payload", lambda b: b[:-5],
     ["meta frame", "byte offset", "truncated payload"]),
    ("unknown-kind", _with_unknown_kind,
     ["byte offset", "unknown frame kind 99"]),
    ("missing-prologue", _drop_prologue,
     ["prologue frame", "missing prologue"]),
    ("missing-meta", _drop_meta,
     ["meta frame", "recording incomplete"]),
    ("crc-mismatch", _flip_crc,
     ["schedule frame", "byte offset", "CRC mismatch"]),
]


class TestCorruptFrames:
    @pytest.mark.parametrize(
        "mutate,fragments",
        [case[1:] for case in CORRUPT_FRAMES],
        ids=[case[0] for case in CORRUPT_FRAMES])
    def test_corrupt_frame_raises_typed_error(self, blob, mutate,
                                              fragments):
        corrupt = mutate(blob)
        with pytest.raises(PinballFormatError) as excinfo:
            # open_pinball is the v2 entry point (from_bytes would route
            # a bad-magic blob to the v1 parser).  Structural breaks
            # raise at open; payload corruption (CRC) raises on first
            # decode of the touched section.
            pinball = open_pinball(corrupt, source="bug.pinball")
            list(pinball.schedule)
        message = str(excinfo.value)
        assert "bug.pinball" in message
        for fragment in fragments:
            assert fragment in message, message

    def test_cli_exits_65(self, tmp_path, capsys, blob):
        """The debugger-facing contract: corrupt v2 file -> exit 65 and
        a frame-level diagnostic on stderr."""
        from repro.cli import main
        # Program name must match the pinball's so the replay reaches
        # the (corrupted) schedule decode rather than the name check.
        source = tmp_path / "diff-7.mc"
        source.write_text("int main() { return 0; }\n")
        path = tmp_path / "bad.pinball"
        path.write_bytes(_flip_crc(blob))
        assert main(["replay", str(source), str(path)]) == 65
        err = capsys.readouterr().err
        assert "schedule frame" in err
        assert "CRC mismatch" in err
        assert "bad.pinball" in err


# -- frame name table ---------------------------------------------------------

def test_every_frame_kind_is_named():
    assert sorted(FRAME_NAMES) == list(range(1, 9))
    assert len(set(FRAME_NAMES.values())) == len(FRAME_NAMES)
