"""Unit tests for the pinball format and serialization."""

import os

import pytest

from repro.pinplay import Pinball
from repro.pinplay.pinball import state_hash
from repro.vm import Machine
from repro.lang import compile_source


def make_pinball(**meta):
    return Pinball(
        program_name="demo",
        snapshot={"memory": {"words": [], "heap_base": 10, "heap_next": 10,
                             "free": [], "block_sizes": []},
                  "threads": [], "locks": [], "next_tid": 1,
                  "rng_state": 5, "inputs": [1, 2], "input_pos": 0,
                  "time_base": 0},
        schedule=[(0, 10), (1, 5)],
        syscalls={0: [("input", 1), ("rand", 3)]},
        mem_order=[(0, 1, 1, 2, 16, "raw")],
        meta=dict({"kind": "region",
                   "thread_instr_counts": {"0": 10, "1": 5}}, **meta),
    )


class TestDerived:
    def test_total_steps(self):
        assert make_pinball().total_steps == 15

    def test_total_instructions(self):
        assert make_pinball().total_instructions == 15

    def test_thread_instructions(self):
        pb = make_pinball()
        assert pb.thread_instructions(0) == 10
        assert pb.thread_instructions(1) == 5
        assert pb.thread_instructions(9) == 0

    def test_kind(self):
        assert make_pinball().kind == "region"
        assert make_pinball(kind="slice").kind == "slice"


class TestSerialization:
    def test_dict_roundtrip(self):
        pb = make_pinball()
        clone = Pinball.from_dict(pb.to_dict())
        assert clone.schedule == pb.schedule
        assert clone.syscalls == pb.syscalls
        assert clone.mem_order == pb.mem_order
        assert clone.meta == pb.meta

    def test_bytes_roundtrip_compressed(self):
        pb = make_pinball()
        clone = Pinball.from_bytes(pb.to_bytes(compress=True))
        assert clone.schedule == pb.schedule

    def test_bytes_roundtrip_uncompressed(self):
        pb = make_pinball()
        clone = Pinball.from_bytes(pb.to_bytes(compress=False))
        assert clone.schedule == pb.schedule

    def test_compression_shrinks(self):
        pb = make_pinball()
        pb.schedule = [(0, 1)] * 2000
        assert pb.size_bytes(compress=True) < pb.size_bytes(compress=False)

    def test_save_load_file(self, tmp_path):
        pb = make_pinball()
        path = str(tmp_path / "x.pinball")
        size = pb.save(path)
        assert size == os.path.getsize(path)
        clone = Pinball.load(path)
        assert clone.program_name == "demo"

    def test_unknown_format_version_rejected(self):
        payload = make_pinball().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            Pinball.from_dict(payload)

    def test_syscall_tids_are_ints_after_roundtrip(self):
        pb = Pinball.from_bytes(make_pinball().to_bytes())
        assert set(pb.syscalls.keys()) == {0}


class TestStateHash:
    def test_hash_stable_for_same_state(self):
        program = compile_source("int g; int main() { g = 3; return 0; }")
        m1 = Machine(program)
        m1.run()
        m2 = Machine(compile_source(
            "int g; int main() { g = 3; return 0; }"))
        m2.run()
        assert state_hash(m1) == state_hash(m2)

    def test_hash_differs_on_memory_change(self):
        program = compile_source("int g; int main() { g = 3; return 0; }")
        machine = Machine(program)
        machine.run()
        before = state_hash(machine)
        machine.memory.write(16, 999)
        assert state_hash(machine) != before
