"""Unit tests for the pinball format and serialization."""

import json
import os
import zlib

import pytest

from repro.pinplay import Pinball, PinballFormatError
from repro.pinplay.pinball import state_hash
from repro.vm import Machine
from repro.lang import compile_source


def make_pinball(**meta):
    return Pinball(
        program_name="demo",
        snapshot={"memory": {"words": [], "heap_base": 10, "heap_next": 10,
                             "free": [], "block_sizes": []},
                  "threads": [], "locks": [], "next_tid": 1,
                  "rng_state": 5, "inputs": [1, 2], "input_pos": 0,
                  "time_base": 0},
        schedule=[(0, 10), (1, 5)],
        syscalls={0: [("input", 1), ("rand", 3)]},
        mem_order=[(0, 1, 1, 2, 16, "raw")],
        meta=dict({"kind": "region",
                   "thread_instr_counts": {"0": 10, "1": 5}}, **meta),
    )


class TestDerived:
    def test_total_steps(self):
        assert make_pinball().total_steps == 15

    def test_total_instructions(self):
        assert make_pinball().total_instructions == 15

    def test_thread_instructions(self):
        pb = make_pinball()
        assert pb.thread_instructions(0) == 10
        assert pb.thread_instructions(1) == 5
        assert pb.thread_instructions(9) == 0

    def test_kind(self):
        assert make_pinball().kind == "region"
        assert make_pinball(kind="slice").kind == "slice"


class TestSerialization:
    def test_dict_roundtrip(self):
        pb = make_pinball()
        clone = Pinball.from_dict(pb.to_dict())
        assert clone.schedule == pb.schedule
        assert clone.syscalls == pb.syscalls
        assert clone.mem_order == pb.mem_order
        assert clone.meta == pb.meta

    def test_bytes_roundtrip_compressed(self):
        pb = make_pinball()
        clone = Pinball.from_bytes(pb.to_bytes(compress=True))
        assert clone.schedule == pb.schedule

    def test_bytes_roundtrip_uncompressed(self):
        pb = make_pinball()
        clone = Pinball.from_bytes(pb.to_bytes(compress=False))
        assert clone.schedule == pb.schedule

    def test_compression_shrinks(self):
        # v1-specific: the v2 container is one canonical encoding with
        # per-frame compression, so compress= only matters for v1 JSON.
        pb = make_pinball()
        pb.schedule = [(0, 1)] * 2000
        assert (pb.size_bytes(compress=True, format="v1")
                < pb.size_bytes(compress=False, format="v1"))

    def test_save_load_file(self, tmp_path):
        pb = make_pinball()
        path = str(tmp_path / "x.pinball")
        size = pb.save(path)
        assert size == os.path.getsize(path)
        clone = Pinball.load(path)
        assert clone.program_name == "demo"

    def test_unknown_format_version_rejected(self):
        payload = make_pinball().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            Pinball.from_dict(payload)

    def test_syscall_tids_are_ints_after_roundtrip(self):
        pb = Pinball.from_bytes(make_pinball().to_bytes())
        assert set(pb.syscalls.keys()) == {0}


def _without(key):
    payload = make_pinball().to_dict()
    del payload[key]
    return json.dumps(payload).encode()


def _with_version(version):
    payload = make_pinball().to_dict()
    payload["format_version"] = version
    return json.dumps(payload).encode()


#: Every way a blob can fail to be a pinball, and a fragment the error
#: message must contain.  All of them raise the one typed error.
CORRUPT_BLOBS = [
    ("empty", b"", "not a pinball"),
    ("truncated-compressed",
     lambda: make_pinball().to_bytes(compress=True, format="v1")[:20],
     "not a pinball"),
    ("bitflipped-compressed",
     lambda: bytes(
         [make_pinball().to_bytes(compress=True, format="v1")[0] ^ 0xFF])
     + make_pinball().to_bytes(compress=True, format="v1")[1:],
     "not a pinball"),
    ("random-binary", b"\x89PNG\r\n\x1a\n" + b"\x00\x7f" * 40,
     "not a pinball"),
    ("non-json-text", b"definitely not json {", "not a pinball"),
    ("compressed-non-json", lambda: zlib.compress(b"still not json"),
     "not a pinball"),
    ("json-but-not-object", b"[1, 2, 3]", "must be a JSON object"),
    ("json-scalar", b"42", "must be a JSON object"),
    ("missing-version", lambda: _without("format_version"),
     "unsupported pinball format version None"),
    ("future-version", lambda: _with_version(99),
     "unsupported pinball format version 99"),
    ("string-version", lambda: _with_version("1"),
     "unsupported pinball format version '1'"),
    ("missing-schedule", lambda: _without("schedule"),
     "malformed pinball payload"),
    ("missing-syscalls", lambda: _without("syscalls"),
     "malformed pinball payload"),
    ("schedule-wrong-shape",
     lambda: json.dumps(dict(make_pinball().to_dict(),
                             schedule=[[1, 2, 3]])).encode(),
     "malformed pinball payload"),
    ("syscall-tid-not-int",
     lambda: json.dumps(dict(make_pinball().to_dict(),
                             syscalls={"zero": []})).encode(),
     "malformed pinball payload"),
]


class TestCorruptBlobs:
    """Table-driven: every corrupt blob raises PinballFormatError."""

    @pytest.mark.parametrize(
        "blob,fragment",
        [pytest.param(blob, fragment, id=name)
         for name, blob, fragment in CORRUPT_BLOBS])
    def test_corrupt_blob_raises_typed_error(self, blob, fragment):
        if callable(blob):
            blob = blob()
        with pytest.raises(PinballFormatError) as excinfo:
            Pinball.from_bytes(blob)
        message = str(excinfo.value)
        assert fragment in message
        assert "<bytes>" in message       # the source is always named

    @pytest.mark.parametrize(
        "blob,fragment",
        [pytest.param(blob, fragment, id=name)
         for name, blob, fragment in CORRUPT_BLOBS[:4]])
    def test_load_names_the_file_path(self, tmp_path, blob, fragment):
        if callable(blob):
            blob = blob()
        path = str(tmp_path / "corrupt.pinball")
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(PinballFormatError) as excinfo:
            Pinball.load(path)
        assert path in str(excinfo.value)

    def test_format_error_is_a_value_error(self):
        """Existing `except ValueError` handlers (the CLI's exit-65 path)
        keep catching deserialization failures."""
        assert issubclass(PinballFormatError, ValueError)
        with pytest.raises(ValueError):
            Pinball.from_bytes(b"nope")

    def test_good_blobs_still_load(self):
        pb = make_pinball()
        for compress in (True, False):
            clone = Pinball.from_bytes(pb.to_bytes(compress=compress))
            assert clone.schedule == pb.schedule


class TestStateHash:
    def test_hash_stable_for_same_state(self):
        program = compile_source("int g; int main() { g = 3; return 0; }")
        m1 = Machine(program)
        m1.run()
        m2 = Machine(compile_source(
            "int g; int main() { g = 3; return 0; }"))
        m2.run()
        assert state_hash(m1) == state_hash(m2)

    def test_hash_differs_on_memory_change(self):
        program = compile_source("int g; int main() { g = 3; return 0; }")
        machine = Machine(program)
        machine.run()
        before = state_hash(machine)
        machine.memory.write(16, 999)
        assert state_hash(machine) != before
