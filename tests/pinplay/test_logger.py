"""Unit tests for the logger: regions, schedules, syscall/memory capture."""

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, replay
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler


LOOP_PROGRAM = """
int total;
int main() {
    int i;
    for (i = 0; i < 200; i = i + 1) { total = total + i; }
    print(total);
    return 0;
}
"""

RACY_PROGRAM = """
int shared; int mtx;
int worker(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        lock(&mtx);
        shared = shared + 1;
        unlock(&mtx);
    }
    return 0;
}
int main() {
    int a; int b;
    a = spawn(worker, 20);
    b = spawn(worker, 20);
    join(a); join(b);
    print(shared);
    return 0;
}
"""


class TestWholeProgram:
    def test_captures_end_reason_and_output(self):
        program = compile_source(LOOP_PROGRAM)
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        assert pinball.meta["end_reason"] == "program_end"
        assert pinball.meta["output"] == [sum(range(200))]
        assert pinball.kind == "whole"

    def test_schedule_steps_match_meta(self):
        program = compile_source(LOOP_PROGRAM)
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        assert pinball.total_steps == pinball.meta["schedule_steps"]

    def test_nondet_syscalls_recorded_per_thread(self):
        source = """
int main() {
    print(input() + input());
    print(rand(50));
    print(time());
    return 0;
}
"""
        program = compile_source(source)
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                                inputs=[3, 4], rand_seed=2)
        names = [name for name, _ in pinball.syscalls[0]]
        assert names == ["input", "input", "rand", "time"]

    def test_mem_order_edges_on_shared_counter(self):
        program = compile_source(RACY_PROGRAM)
        pinball = record_region(
            program, RandomScheduler(seed=1, switch_prob=0.3), RegionSpec())
        assert len(pinball.mem_order) > 0
        kinds = {edge[5] for edge in pinball.mem_order}
        assert kinds <= {"raw", "waw", "war"}
        # Every edge crosses threads.
        assert all(edge[0] != edge[2] for edge in pinball.mem_order)

    def test_no_mem_order_edges_single_thread(self):
        program = compile_source(LOOP_PROGRAM)
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        assert pinball.mem_order == []


class TestRegions:
    def test_skip_starts_region_later(self):
        program = compile_source(LOOP_PROGRAM)
        whole = record_region(program, RoundRobinScheduler(), RegionSpec())
        program2 = compile_source(LOOP_PROGRAM)
        partial = record_region(program2, RoundRobinScheduler(),
                                RegionSpec(skip=500))
        assert (partial.thread_instructions(0)
                == whole.thread_instructions(0) - 500)

    def test_skip_snapshot_contains_progress(self):
        program = compile_source(LOOP_PROGRAM)
        pinball = record_region(program, RoundRobinScheduler(),
                                RegionSpec(skip=500))
        # The snapshot's thread already sits mid-loop, not at entry.
        thread_snap = pinball.snapshot["threads"][0]
        assert thread_snap["pc"] > 0

    def test_length_bounds_main_thread(self):
        program = compile_source(LOOP_PROGRAM)
        pinball = record_region(program, RoundRobinScheduler(),
                                RegionSpec(skip=100, length=300))
        assert pinball.meta["end_reason"] == "length_reached"
        assert pinball.thread_instructions(0) == 300

    def test_region_ends_at_failure(self):
        source = """
int main() {
    int i;
    for (i = 0; i < 1000; i = i + 1) {
        assert(i < 50, 5);
    }
    return 0;
}
"""
        program = compile_source(source)
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        assert pinball.meta["end_reason"] == "failure"
        assert pinball.meta["failure"]["code"] == 5

    def test_whole_region_replayable_after_skip(self):
        program = compile_source(LOOP_PROGRAM)
        pinball = record_region(program, RoundRobinScheduler(),
                                RegionSpec(skip=500))
        machine, result = replay(pinball, program)
        assert machine.output == pinball.meta["output"]

    def test_region_spec_validation(self):
        with pytest.raises(ValueError):
            RegionSpec(skip=-1)
        with pytest.raises(ValueError):
            RegionSpec(length=0)

    def test_region_spec_describe(self):
        assert RegionSpec().describe() == "whole program"
        assert "skip 5" in RegionSpec(skip=5, length=10).describe()
