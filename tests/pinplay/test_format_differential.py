"""Differential tests: format v2 is observationally identical to v1.

The shared seeded generator (:mod:`tests.support.progen`) records every
randomized program twice — once through the classic v1 path, once
through the v2 path (fast recorder + embedded checkpoints) with the v2
recording round-tripped through its container bytes so the lazy reader
is on the hot path.  The two must agree on:

* every pinball section (schedule, syscalls, mem-order edges, snapshot,
  region metadata);
* the replayed :class:`InstrEvent` stream, final state hash and output,
  under both engines;
* slice results — byte-identical JSON renderings — under all three
  slice indexes (``ddg``, ``columnar``, ``rows``);
* the fast always-on record path vs the classic per-event LoggerTool
  (forcing the classic path by attaching a do-nothing tool);
* debugger ``seek`` over embedded checkpoints, including the boundary
  cases (target exactly on a checkpoint, and one step past one),
  against a serial replay of the same prefix.
"""

import json

import pytest

from repro.debugger import DrDebugSession
from repro.pinplay import Pinball, RegionSpec, record_region, replay
from repro.pinplay.pinball import state_hash
from repro.slicing import SliceOptions, SlicingSession
from repro.vm.hooks import Tool
from repro.vm.machine import Machine, MachineSnapshot
from repro.vm.scheduler import RecordedScheduler

from tests.support.progen import (RetainingLog, build_program,
                                  inputs_for, record_pinball,
                                  scheduler_for)

SEEDS = list(range(12))
INTERVAL = 64
ENGINES = ("legacy", "predecoded")
INDEXES = ("ddg", "columnar", "rows")

_cache = {}


def recordings(seed):
    """(program, v1 pinball, lazily reopened v2 pinball) for ``seed``."""
    if seed not in _cache:
        program = build_program(seed)
        v1 = record_pinball(program, seed, pinball_format="v1")
        v2 = record_pinball(program, seed, pinball_format="v2",
                            checkpoint_interval=INTERVAL)
        # Both sides reopened from their serialized bytes: that is what
        # real consumers see, and it normalizes JSON artifacts (tuples
        # vs lists) identically on both sides.
        v1 = Pinball.from_bytes(v1.to_bytes(format="v1"))
        lazy = Pinball.from_bytes(v2.to_bytes(format="v2"))
        _cache[seed] = (program, v1, lazy)
    return _cache[seed]


@pytest.mark.parametrize("seed", SEEDS)
def test_sections_equal(seed):
    _program, v1, v2 = recordings(seed)
    assert list(v2.schedule) == list(v1.schedule)
    assert v2.syscalls == v1.syscalls
    assert list(v2.mem_order) == list(v1.mem_order)
    assert v2.snapshot == v1.snapshot
    assert v2.meta == v1.meta
    assert v2.total_steps == v1.total_steps


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_replay_streams_identical(seed, engine):
    program, v1, v2 = recordings(seed)
    log_v1, log_v2 = RetainingLog(), RetainingLog()
    m1, _ = replay(v1, program, tools=(log_v1,), engine=engine)
    m2, _ = replay(v2, program, tools=(log_v2,), engine=engine)
    assert log_v1.steps == log_v2.steps
    assert log_v1.syscalls == log_v2.syscalls
    assert log_v1.frozen() == log_v2.frozen()
    assert list(m1.output) == list(m2.output)
    assert state_hash(m1) == state_hash(m2)


def _slice_bytes(pinball, program, index):
    """A canonical byte rendering of slices for the last few reads."""
    session = SlicingSession(pinball, program,
                             options=SliceOptions(index=index))
    payload = []
    for criterion in session.last_reads(2):
        result = session.slice_for(criterion)
        payload.append({"criterion": list(criterion),
                        "nodes": sorted(result.nodes),
                        "edges": sorted(result.edges)})
    return json.dumps(payload, sort_keys=True).encode()


@pytest.mark.parametrize("index", INDEXES)
@pytest.mark.parametrize("seed", SEEDS[::4])
def test_slices_byte_identical(seed, index):
    program, v1, v2 = recordings(seed)
    assert (_slice_bytes(v1, program, index)
            == _slice_bytes(v2, program, index))


@pytest.mark.parametrize("seed", SEEDS[::4])
def test_slices_byte_identical_across_indexes_on_v2(seed):
    """All three indexes agree with each other on the v2 recording (the
    v1 cross-index agreement is the index-differential suite's job)."""
    program, _v1, v2 = recordings(seed)
    renders = {index: _slice_bytes(v2, program, index)
               for index in INDEXES}
    assert renders["ddg"] == renders["columnar"] == renders["rows"]


@pytest.mark.parametrize("seed", SEEDS)
def test_fast_recorder_matches_classic_logger(seed):
    """The untraced fast record path produces the same pinball as the
    classic per-event LoggerTool path (forced by attaching a tool)."""
    program = build_program(seed)
    fast = record_pinball(program, seed, pinball_format="v2",
                          checkpoint_interval=INTERVAL)
    classic = record_region(program, scheduler_for(seed), RegionSpec(),
                            inputs=inputs_for(seed), rand_seed=seed,
                            extra_tools=(Tool(),), pinball_format="v2",
                            checkpoint_interval=INTERVAL)
    assert fast.schedule == classic.schedule
    assert fast.syscalls == classic.syscalls
    assert fast.mem_order == classic.mem_order
    assert fast.snapshot == classic.snapshot
    assert fast.meta == classic.meta
    assert ([c.steps_done for c in fast.checkpoints]
            == [c.steps_done for c in classic.checkpoints])
    assert (fast.to_bytes(format="v2") == classic.to_bytes(format="v2"))


def _serial_state_at(pinball, program, steps):
    """Reference: replay the first ``steps`` steps from the region
    snapshot with no checkpoint shortcuts."""
    from repro.pinplay.replayer import SyscallInjector
    injector = SyscallInjector(pinball.syscalls)
    machine = Machine.from_snapshot(
        program, MachineSnapshot.from_dict(pinball.snapshot),
        scheduler=RecordedScheduler(pinball.schedule),
        syscall_injector=injector.inject)
    machine.run(max_steps=steps)
    return machine


@pytest.mark.parametrize("seed", SEEDS[::3])
def test_seek_checkpoint_boundaries_match_serial_replay(seed):
    program, _v1, v2 = recordings(seed)
    checkpoints = v2.checkpoints
    if not checkpoints:
        pytest.skip("region too short for an interior checkpoint")
    anchor = checkpoints[len(checkpoints) // 2]
    targets = {anchor.steps_done,               # exactly on a checkpoint
               anchor.steps_done + 1,           # one step past one
               max(0, anchor.steps_done - 1),   # just before one
               v2.total_steps}                  # region end
    session = DrDebugSession(v2, program)
    session.enable_reverse_debugging(interval=INTERVAL)
    for target in sorted(targets):
        session.seek(target)
        reference = _serial_state_at(v2, program, target)
        assert session.steps_done == target
        assert state_hash(session.machine) == state_hash(reference), (
            "seek(%d) diverged from serial replay" % target)
        assert list(session.machine.output) == list(reference.output)
    # Seek is random-access: going backwards again must be just as exact.
    session.seek(anchor.steps_done)
    reference = _serial_state_at(v2, program, anchor.steps_done)
    assert state_hash(session.machine) == state_hash(reference)
