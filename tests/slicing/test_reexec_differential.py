"""Differential tests: on-demand re-execution slicing ("reexec") is
byte-identical to the build-once CSR dependence index ("ddg").

The reexec engine answers each criterion query with targeted,
checkpoint-bounded re-replays over the deterministic pinball instead of
materializing the full trace once (paper Section 5: the pinball *is* the
trace, replay is the random-access primitive).  Whatever it discovers is
memoized into a sparse partial DDG — and that partial graph must be
indistinguishable from the corresponding fragment of the full index.

Over the shared randomized corpus (:mod:`tests.support.progen`, ≥12
seeds) and both pinball formats —

* **v1** (monolithic, no embedded checkpoints → reexec synthesizes its
  own window boundaries with a scout replay), and
* **v2** (streamed container recorded with a small checkpoint interval →
  many genuine embedded-checkpoint windows),

every slice's canonical serialization (``to_dict`` minus engine stats),
unresolved-location count, and relogged slice-pinball bytes must equal
the ddg session's, for read criteria, global-location queries, and the
recorded failure.  Repeated queries must come back from the reexec
session's slice cache still byte-identical, and disabling the
save/restore bypass must change both engines in lockstep.
"""

import json

import pytest

from repro.slicing import SliceOptions, SlicingSession

from tests.support.progen import build_program, record_pinball

SEEDS = list(range(12))
FORMATS = ("v1", "v2")

#: Small enough that the corpus regions (a few thousand steps) split
#: into many embedded-checkpoint windows, so the v2 leg really exercises
#: multi-window scans and cross-window dependence resolution.
V2_CHECKPOINT_INTERVAL = 64


def _record(seed, fmt):
    program = build_program(seed)
    if fmt == "v2":
        pinball = record_pinball(program, seed, pinball_format="v2",
                                 checkpoint_interval=V2_CHECKPOINT_INTERVAL)
    else:
        pinball = record_pinball(program, seed, pinball_format="v1")
    return program, pinball


def _sessions(program, pinball, **option_kwargs):
    """(ddg reference session, true-reexec session) over one recording.

    The engine is pinned to ``predecoded`` so the reexec gate holds even
    under a ``REPRO_ENGINE`` CI rider — the point of this suite is the
    reexec path itself, not its fallback.
    """
    ddg = SlicingSession(pinball, program,
                         SliceOptions(index="ddg", **option_kwargs),
                         engine="predecoded")
    reexec = SlicingSession(pinball, program,
                            SliceOptions(index="reexec", **option_kwargs),
                            engine="predecoded")
    assert reexec._reexec is not None, "reexec session fell back"
    return ddg, reexec


def _canonical(dslice):
    """The byte-identity contract: ``to_dict`` minus the engine stats."""
    payload = dslice.to_dict()
    payload.pop("stats")
    return json.dumps(payload, sort_keys=True)


def _queries(session):
    queries = [(criterion, None) for criterion in session.last_reads(5)]
    for name in ("g0", "g1"):
        try:
            criterion = session.last_write_to_global(name)
        except ValueError:
            continue
        queries.append((criterion, [session.global_location(name)]))
    try:
        queries.append((session.failure_criterion(), None))
    except ValueError:
        pass
    return queries


def _assert_identical(ddg_slice, reexec_slice, context):
    __tracebackhide__ = True
    assert _canonical(ddg_slice) == _canonical(reexec_slice), (
        "slice bytes differ (%s)" % context)
    assert (ddg_slice.stats["unresolved_locations"]
            == reexec_slice.stats["unresolved_locations"]), context


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("seed", SEEDS)
def test_reexec_matches_ddg(seed, fmt):
    """Slice bytes, unresolved counts, and slice-pinball bytes agree."""
    program, pinball = _record(seed, fmt)
    ddg, reexec = _sessions(program, pinball)

    # The criterion helpers must agree before any slicing happens.
    queries = _queries(ddg)
    assert queries, "corpus program produced no slice criteria"
    assert queries == _queries(reexec)

    for criterion, locations in queries:
        _assert_identical(
            ddg.slice_for(criterion, locations),
            reexec.slice_for(criterion, locations),
            "seed=%d fmt=%s criterion=%r" % (seed, fmt, criterion))

    # The relogged slice pinball must match byte for byte.
    criterion, locations = queries[0]
    ddg_pb = ddg.make_slice_pinball(ddg.slice_for(criterion, locations))
    reexec_pb = reexec.make_slice_pinball(
        reexec.slice_for(criterion, locations))
    assert (ddg_pb.to_bytes(compress=False)
            == reexec_pb.to_bytes(compress=False))


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("seed", SEEDS[::4])
def test_repeated_queries_warm_the_session(seed, fmt):
    """A warmed reexec session answers from its caches, byte-identical,
    without re-running any replay passes."""
    program, pinball = _record(seed, fmt)
    _ddg, reexec = _sessions(program, pinball)
    index = reexec._reexec
    criteria = reexec.last_reads(3)
    first = [reexec.slice_for(c) for c in criteria]
    passes_after_first = index.passes
    again = [reexec.slice_for(c) for c in criteria]
    for a, b in zip(first, again):
        assert a is b, "seed=%d fmt=%s: repeat missed the cache" % (
            seed, fmt)
    # Warm answers are cache reads — no new re-execution passes.
    assert index.passes == passes_after_first
    assert index.cache_hits >= len(criteria)


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("seed", SEEDS[::4])
def test_reexec_matches_ddg_without_bypass(seed, fmt):
    """Disabling the Section 5.2 save/restore bypass changes both
    engines in lockstep."""
    program, pinball = _record(seed, fmt)
    ddg, reexec = _sessions(program, pinball, prune_save_restore=False)
    for criterion, locations in _queries(ddg):
        _assert_identical(
            ddg.slice_for(criterion, locations),
            reexec.slice_for(criterion, locations),
            "seed=%d fmt=%s no-bypass criterion=%r"
            % (seed, fmt, criterion))
