"""Tests for dual slicing (failing-vs-passing slice comparison)."""

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SlicingSession, dual_slice
from repro.vm import RandomScheduler, RoundRobinScheduler

BRANCHY = """
int out; int bias;
int main() {
    int c;
    c = input();
    bias = 10;
    if (c) {
        out = bias - 10;
    } else {
        out = bias + 10;
    }
    assert(out > 0, 5);
    return 0;
}
"""


def session_for_input(value):
    program = compile_source(BRANCHY, name="dual")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                            inputs=[value])
    return SlicingSession(pinball, program), pinball


class TestInputDependentBug:
    def test_failing_only_pinpoints_buggy_assignment(self):
        failing_session, failing_pb = session_for_input(1)
        passing_session, passing_pb = session_for_input(0)
        assert failing_pb.meta["failure"] is not None
        assert passing_pb.meta["failure"] is None

        failing = failing_session.slice_for_global("out")
        passing = passing_session.slice_for_global("out")
        result = dual_slice(failing, passing)

        fail_lines = {line for _f, line in result.failing_only}
        pass_lines = {line for _f, line in result.passing_only}
        assert 8 in fail_lines        # out = bias - 10: the bug candidate
        assert 10 in pass_lines       # out = bias + 10: bypassed
        common_lines = {line for _f, line in result.common}
        assert 5 in common_lines      # c = input() feeds both via the if
        assert 6 in common_lines      # bias = 10 feeds both

    def test_describe_renders_all_sections(self):
        failing_session, _ = session_for_input(1)
        passing_session, _ = session_for_input(0)
        result = dual_slice(failing_session.slice_for_global("out"),
                            passing_session.slice_for_global("out"))
        text = result.describe()
        assert "FAILING" in text
        assert "passing" in text
        assert "common" in text

    def test_identical_runs_have_empty_diff(self):
        session_a, _ = session_for_input(0)
        session_b, _ = session_for_input(0)
        result = dual_slice(session_a.slice_for_global("out"),
                            session_b.slice_for_global("out"))
        assert result.failing_only == frozenset()
        assert result.passing_only == frozenset()
        assert result.common


class TestScheduleDependentBug:
    def test_racy_vs_benign_schedule(self, fig5):
        """The racy write shows up only in the failing schedule's slice."""
        program, failing_pb, _seed = fig5
        # Find a benign schedule of the same program.
        from tests.conftest import FIG5_SOURCE
        passing_pb = None
        for seed in range(100):
            candidate = record_region(
                program, RandomScheduler(seed=seed, switch_prob=0.4),
                RegionSpec())
            if candidate.meta["failure"] is None:
                passing_pb = candidate
                break
        assert passing_pb is not None

        failing_session = SlicingSession(failing_pb, program)
        passing_session = SlicingSession(passing_pb, program)
        # Same criterion in both runs: the value of k after line 14
        # (k = k + x) in thread 2 — in the failing run it absorbed the
        # racy x, in the passing run it did not.
        failing = failing_session.slice_for(
            failing_session.last_instance_at_line(14, tid=2))
        passing = passing_session.slice_for(
            passing_session.last_instance_at_line(14, tid=2))
        result = dual_slice(failing, passing)
        fail_only_funcs = {func for func, _l in result.failing_only}
        assert "thread1" in fail_only_funcs   # the racy writer
