"""Unit tests for global-trace construction (topological merge)."""

import pytest

from repro.slicing.global_trace import GlobalTraceError, merge_traces
from repro.slicing.trace import TraceRecord, TraceStore


def make_store(lengths):
    """A store with ``lengths[tid]`` empty records per thread."""
    store = TraceStore()
    for tid, length in lengths.items():
        for tindex in range(length):
            store.append(TraceRecord(
                tid=tid, tindex=tindex, addr=tindex, line=None, func="f",
                rdefs=(), ruses=(), mdefs=(), muses=(), cd=None))
    return store


class TestMerge:
    def test_program_order_preserved(self):
        store = make_store({0: 5, 1: 5})
        gtrace = merge_traces(store, [])
        seen = {}
        for record in gtrace.order:
            prev = seen.get(record.tid, -1)
            assert record.tindex == prev + 1
            seen[record.tid] = record.tindex
        assert len(gtrace) == 10

    def test_gpos_assigned_densely(self):
        store = make_store({0: 3, 1: 3})
        gtrace = merge_traces(store, [])
        assert [r.gpos for r in gtrace.order] == list(range(6))

    def test_edges_respected(self):
        store = make_store({0: 3, 1: 3})
        # Thread 1's record 0 must come after thread 0's record 2.
        edges = [(0, 2, 1, 0, 100, "raw")]
        gtrace = merge_traces(store, edges)
        assert gtrace.verify_topological(edges)
        pos_producer = store.get((0, 2)).gpos
        pos_consumer = store.get((1, 0)).gpos
        assert pos_producer < pos_consumer

    def test_interleaved_edges(self):
        store = make_store({0: 4, 1: 4})
        edges = [
            (0, 1, 1, 0, 1, "raw"),   # t1[0] after t0[1]
            (1, 2, 0, 3, 2, "waw"),   # t0[3] after t1[2]
        ]
        gtrace = merge_traces(store, edges)
        assert gtrace.verify_topological(edges)

    def test_clustering_keeps_runs_together(self):
        # With one cross edge, the merge should produce two long runs,
        # not a fine interleaving (LP locality heuristic).
        store = make_store({0: 10, 1: 10})
        edges = [(0, 9, 1, 0, 1, "raw")]
        gtrace = merge_traces(store, edges)
        tids = [record.tid for record in gtrace.order]
        assert tids == [0] * 10 + [1] * 10

    def test_cycle_detected(self):
        store = make_store({0: 2, 1: 2})
        edges = [
            (0, 1, 1, 0, 1, "raw"),
            (1, 1, 0, 0, 2, "raw"),
        ]
        with pytest.raises(GlobalTraceError):
            merge_traces(store, edges)

    def test_three_threads(self):
        store = make_store({0: 3, 1: 3, 2: 3})
        edges = [
            (0, 2, 1, 0, 1, "raw"),
            (1, 2, 2, 0, 2, "raw"),
        ]
        gtrace = merge_traces(store, edges)
        assert gtrace.verify_topological(edges)
        assert len(gtrace) == 9

    def test_empty_store(self):
        gtrace = merge_traces(TraceStore(), [])
        assert len(gtrace) == 0

    def test_record_lookup(self):
        store = make_store({0: 2})
        gtrace = merge_traces(store, [])
        assert gtrace.record_at(1) is gtrace.record_of((0, 1))


class TestMergeFromRealExecution:
    def test_logger_edges_always_consistent(self, fig5):
        """Edges recorded from a real run must never be cyclic."""
        from repro.slicing import TraceCollector
        from repro.pinplay import replay
        program, pinball, _seed = fig5
        collector = TraceCollector(program)
        replay(pinball, program, tools=[collector], verify=False)
        gtrace = merge_traces(collector.store, pinball.mem_order)
        assert gtrace.verify_topological(pinball.mem_order)
