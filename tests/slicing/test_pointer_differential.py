"""10-seed differential over the struct/pointer corpus: every slice
index, shard count and pinball format agrees byte-for-byte.

The pointer band stresses what the flat corpus cannot: heap addresses
from ``new`` flowing through ``->`` loads (so memory dependences chain
through pointer registers), recursive call frames, ``delete``'s
allocator effects, and struct-value locals.  For each seed and pinball
format the ``ddg``/``shards=1`` build is the reference; the sharded
build, both alternative index layouts (``columnar``, ``rows``) and the
on-demand re-execution engine (``reexec``, unsharded by design) must
produce canonically identical slices and byte-identical relogged
slice pinballs."""

import json

import pytest

from repro.slicing import SliceOptions, SlicingSession

from tests.support.progen import build_struct_program, record_pinball

SEEDS = list(range(10))
FORMATS = ("v1", "v2")
V2_CHECKPOINT_INTERVAL = 64

#: (index, shards) combos checked against the ddg/shards=1 reference.
#: reexec answers queries by targeted re-replay over the whole pinball,
#: so it has no sharded variant.
COMBOS = [
    ("ddg", 2),
    ("columnar", 1),
    ("columnar", 2),
    ("rows", 1),
    ("rows", 2),
    ("reexec", 1),
]


def _record(seed, fmt):
    program = build_struct_program(seed)
    if fmt == "v2":
        pinball = record_pinball(program, seed, pinball_format="v2",
                                 checkpoint_interval=V2_CHECKPOINT_INTERVAL)
    else:
        pinball = record_pinball(program, seed, pinball_format="v1")
    return program, pinball


def _session(program, pinball, index, shards):
    session = SlicingSession(pinball, program,
                             SliceOptions(index=index, shards=shards),
                             engine="predecoded")
    if index == "reexec":
        assert session._reexec is not None, "reexec session fell back"
    return session


def _canonical(dslice):
    """Canonical serialization: ``to_dict`` minus engine stats, with
    node/edge lists sorted (index layouts emit them in store order,
    which differs between the columnar and row stores)."""
    payload = dslice.to_dict()
    payload.pop("stats")
    payload["nodes"] = sorted(payload["nodes"],
                              key=lambda n: json.dumps(n, sort_keys=True))
    payload["edges"] = sorted(payload["edges"],
                              key=lambda e: json.dumps(e, sort_keys=True))
    return json.dumps(payload, sort_keys=True)


def _queries(session):
    queries = [(criterion, None) for criterion in session.last_reads(4)]
    try:
        criterion = session.last_write_to_global("total")
        queries.append((criterion, [session.global_location("total")]))
    except ValueError:
        pass
    return queries


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("seed", SEEDS)
def test_pointer_corpus_differential(seed, fmt):
    program, pinball = _record(seed, fmt)
    reference = _session(program, pinball, "ddg", 1)
    queries = _queries(reference)
    assert queries, "pointer corpus program produced no slice criteria"
    expected = {criterion: _canonical(reference.slice_for(criterion, locs))
                for criterion, locs in queries}
    ref_pb = reference.make_slice_pinball(
        reference.slice_for(*queries[0])).to_bytes(compress=False)

    for index, shards in COMBOS:
        session = _session(program, pinball, index, shards)
        assert _queries(session) == queries, (
            "criterion helpers disagree (seed=%d fmt=%s %s/%d)"
            % (seed, fmt, index, shards))
        for criterion, locations in queries:
            got = _canonical(session.slice_for(criterion, locations))
            assert got == expected[criterion], (
                "slice bytes differ (seed=%d fmt=%s %s/%d criterion=%r)"
                % (seed, fmt, index, shards, criterion))
        got_pb = session.make_slice_pinball(
            session.slice_for(*queries[0])).to_bytes(compress=False)
        assert got_pb == ref_pb, (
            "slice-pinball bytes differ (seed=%d fmt=%s %s/%d)"
            % (seed, fmt, index, shards))


@pytest.mark.parametrize("seed", SEEDS[::3])
def test_formats_agree_with_each_other(seed):
    """The same seed recorded under v1 and v2 yields identical slices
    (the stream container changes the carrier, not the content)."""
    program_v1, pinball_v1 = _record(seed, "v1")
    program_v2, pinball_v2 = _record(seed, "v2")
    s1 = _session(program_v1, pinball_v1, "ddg", 1)
    s2 = _session(program_v2, pinball_v2, "ddg", 1)
    q1, q2 = _queries(s1), _queries(s2)
    assert q1 == q2
    for (criterion, locations), _ in zip(q1, q2):
        assert (_canonical(s1.slice_for(criterion, locations))
                == _canonical(s2.slice_for(criterion, locations)))
