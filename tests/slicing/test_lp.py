"""Unit tests for Limited Preprocessing block summaries."""

from repro.slicing.lp import TraceBlock, build_blocks
from repro.slicing.trace import TraceRecord


def record(tid, tindex, rdefs=(), mdefs=()):
    return TraceRecord(tid=tid, tindex=tindex, addr=0, line=None, func="f",
                       rdefs=tuple(rdefs), ruses=(), mdefs=tuple(mdefs),
                       muses=(), cd=None)


class TestBuildBlocks:
    def test_partitioning(self):
        order = [record(0, i) for i in range(10)]
        blocks = build_blocks(order, block_size=4)
        assert [(b.start, b.end) for b in blocks] == [(0, 4), (4, 8), (8, 10)]

    def test_exact_multiple(self):
        order = [record(0, i) for i in range(8)]
        blocks = build_blocks(order, block_size=4)
        assert [(b.start, b.end) for b in blocks] == [(0, 4), (4, 8)]

    def test_empty_trace(self):
        assert build_blocks([], block_size=4) == []

    def test_summaries_collect_defs(self):
        order = [
            record(0, 0, rdefs=("r0",)),
            record(0, 1, mdefs=(100,)),
            record(1, 0, rdefs=("r0",)),
        ]
        blocks = build_blocks(order, block_size=10)
        assert blocks[0].defs == {
            ("r", 0, "r0"), ("m", 100), ("r", 1, "r0")}


class TestMayDefine:
    def test_hit_and_miss(self):
        block = TraceBlock(0, 4, {("m", 100), ("r", 0, "r0")})
        assert block.may_define({("m", 100)})
        assert block.may_define({("r", 0, "r0"), ("m", 999)})
        assert not block.may_define({("m", 999)})
        assert not block.may_define(set())

    def test_symmetric_over_set_sizes(self):
        # Both branches of the size heuristic must agree.
        big = {("m", i) for i in range(100)}
        block = TraceBlock(0, 4, big)
        assert block.may_define({("m", 5)})
        small_block = TraceBlock(0, 4, {("m", 5)})
        assert small_block.may_define(big)
