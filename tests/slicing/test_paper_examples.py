"""The paper's three worked examples, reproduced as tests.

* Figure 5 — slicing a multi-threaded program: the backward slice for the
  assertion-failure value crosses threads through the racy shared variable
  and captures exactly the root cause.
* Figure 7 — indirect-jump control-dependence precision: without CFG
  refinement the slice misses the ``switch`` and the statement feeding it;
  with refinement both are included.
* Figure 8 / Section 5.2 — save/restore pruning: without pruning, a slice
  crossing a guarded call drags in the guard predicate and its inputs via
  the callee's save/restore pair; pruning removes them.
"""

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RoundRobinScheduler

from tests.conftest import expose_failure


def lines_by_func(dslice):
    result = {}
    for func, line in dslice.source_statements():
        if func is not None and line is not None:
            result.setdefault(func, set()).add(line)
    return result


class TestFigure5:
    def test_slice_captures_cross_thread_root_cause(self, fig5):
        program, pinball, _seed = fig5
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        stmts = lines_by_func(dslice)
        # thread1's z = 1 (line 5) and the racy x = z + 1 (line 6).
        assert {5, 6} <= stmts["thread1"]
        # thread2's k = 5; k = k + x; assert (lines 13..15... source has
        # them at 13-15 region: decl line 13 produces no code).
        assert {14, 15, 16, 17} & stmts["thread2"]

    def test_slice_excludes_unrelated_statements(self, fig5):
        program, pinball, _seed = fig5
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        stmts = lines_by_func(dslice)
        # y = x + 1 (line 7) does not affect k; neither does main.
        assert 7 not in stmts["thread1"]
        assert "main" not in stmts

    def test_slice_includes_data_and_control_edges(self, fig5):
        program, pinball, _seed = fig5
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        kinds = {kind for _c, _p, kind, _l in dslice.edges}
        assert kinds == {"data", "control"} or kinds == {"data"}

    def test_cross_thread_edge_present(self, fig5):
        program, pinball, _seed = fig5
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        cross = [(c, p) for c, p, kind, _l in dslice.edges
                 if c[0] != p[0]]
        assert cross, "no cross-thread dependence edge in the slice"


# The paper's Figure 7 in assembly, mirroring its x86: the switch is a
# *bare* indirect jump through a jump table, with no guarding bounds-check
# branch (their compiler proved c in range).  Line tags follow the paper's
# C snippet: line 3 = c = fgetc(fin), line 4 = switch(c), line 6 = w = d+2,
# line 9 = w = d-2 (case 'b'), line 10 = w = d*2 (third case).
FIG7_ASM = """
.global w 1
.global d 1
.data jt = case0 case1 case2

func main
  mov r0, 10 @1
  lea r3, d @1
  st [r3], r0 @1
  mov r5, 3
loop:
  sys input @3
  mov r4, r0 @3
  lea r1, jt @4
  add r1, r1, r4 @4
  ld r1, [r1] @4
  ijmp r1 @4
case0:
  lea r2, d @6
  ld r2, [r2] @6
  add r2, r2, 2 @6
  lea r3, w @6
  st [r3], r2 @6
  jmp done @6
case1:
  lea r2, d @9
  ld r2, [r2] @9
  sub r2, r2, 2 @9
  lea r3, w @9
  st [r3], r2 @9
  jmp done @9
case2:
  lea r2, d @10
  ld r2, [r2] @10
  mul r2, r2, 2 @10
  lea r3, w @10
  st [r3], r2 @10
done:
  sub r5, r5, 1 @12
  br r5, loop @12
  lea r1, w @13
  ld r0, [r1] @13
  sys print @13
  halt
"""


class TestFigure7:
    def _slice(self, refine, discover=False):
        from repro.isa import assemble
        program = assemble(FIG7_ASM, name="fig7")
        # Cases execute in the order 1, 2, 0 so the dispatch's targets are
        # already (partially) learned when the case-0 criterion executes.
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                                inputs=[1, 2, 0])
        session = SlicingSession(
            pinball, program,
            SliceOptions(refine_cfg=refine, discover_jump_tables=discover))
        # "Slice for w at 6_1": the value of w as of the last execution of
        # line 6 (w = d + 2).
        criterion = session.last_instance_at_line(6)
        return program, session.slice_for(
            criterion, [session.global_location("w")])

    def test_unrefined_slice_misses_switch_and_input(self):
        program, dslice = self._slice(refine=False)
        lines = lines_by_func(dslice).get("main", set())
        assert 6 in lines           # the criterion statement itself
        assert 1 in lines           # d's definition (data dependence)
        # The paper's imprecision: the missing CFG edges lose the control
        # dependence 6_1 -> 4_1, so switch(c) and c = input() are absent.
        assert 4 not in lines
        assert 3 not in lines

    def test_refined_slice_includes_switch_and_its_input(self):
        program, dslice = self._slice(refine=True)
        lines = lines_by_func(dslice).get("main", set())
        assert 6 in lines
        assert 4 in lines           # switch dispatch (CD 6_1 -> 4_1)
        assert 3 in lines           # c = input()  (the fgetc analog)

    def test_refined_is_superset_of_unrefined(self):
        _p, unrefined = self._slice(refine=False)
        _p, refined = self._slice(refine=True)
        assert set(unrefined.nodes) <= set(refined.nodes)

    def test_refinement_count_reported(self):
        from repro.isa import assemble
        program = assemble(FIG7_ASM, name="fig7")
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                                inputs=[1, 2, 0])
        session = SlicingSession(pinball, program, SliceOptions())
        assert session.collector.registry.refinements == 3

    def test_table_discovery_at_least_as_precise_as_refined(self):
        _p, refined = self._slice(refine=True)
        _p, discovered = self._slice(refine=False, discover=True)
        # Static table discovery knows all targets up front, so it captures
        # every control dependence online refinement finds, plus dispatch
        # dependences from *early* iterations (when the online CFG still
        # knew too few targets to compute the join post-dominator).
        assert set(refined.nodes) <= set(discovered.nodes)
        key_lines = lines_by_func(discovered).get("main", set())
        assert {3, 4, 6} <= key_lines


class TestMiniCSwitchPrecision:
    """MiniC switches carry an explicit bounds check, so even the
    unrefined slice keeps the scrutinee through those branches — a
    substrate difference worth pinning down."""

    SOURCE = r"""
int w;
int d;
int main() {
    int c; int i;
    d = 10;
    for (i = 0; i < 3; i = i + 1) {
        c = input();
        switch (c) {
            case 0:
                w = d + 2;
                break;
            case 1:
                w = d - 2;
                break;
            case 2:
                w = d * 2;
                break;
        }
    }
    print(w);
    return 0;
}
"""

    def _slice(self, refine):
        program = compile_source(self.SOURCE, name="minic-switch")
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                                inputs=[1, 2, 0])
        session = SlicingSession(
            pinball, program, SliceOptions(refine_cfg=refine))
        criterion = session.last_instance_at_line(11)
        return session.slice_for(criterion)

    def test_bounds_checks_preserve_scrutinee_even_unrefined(self):
        dslice = self._slice(refine=False)
        lines = lines_by_func(dslice).get("main", set())
        assert 8 in lines    # c = input() via the bounds-check branches

    def test_refined_also_includes_dispatch(self):
        dslice = self._slice(refine=True)
        lines = lines_by_func(dslice).get("main", set())
        assert {8, 9, 11} <= lines


FIG8_SOURCE = r"""
int w;
int out;
int q_helper(int a) {
    int t1; int t2; int t3; int t4;
    t1 = a + 1;
    t2 = t1 * 2;
    t3 = t2 - a;
    t4 = t3 + t1;
    return t4;
}
int main() {
    int c; int d; int e; int unused;
    c = input();
    d = 7;
    e = d + 1;
    if (c) {
        unused = q_helper(3);
    }
    w = e + d;
    print(w);
    return 0;
}
"""


class TestFigure8:
    def _slice(self, prune):
        program = compile_source(FIG8_SOURCE, name="fig8")
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                                inputs=[1])   # take the guarded call
        session = SlicingSession(
            pinball, program, SliceOptions(prune_save_restore=prune))
        criterion = session.last_instance_at_line(20)  # w = e + d
        return session, session.slice_for(criterion)

    def test_unpruned_slice_contains_spurious_statements(self):
        session, dslice = self._slice(prune=False)
        lines = lines_by_func(dslice).get("main", set())
        # e and d live in callee-saved registers across the call; without
        # pruning the slice reaches them through q_helper's restores and
        # drags in the guard (line 17) and its input (line 14).
        assert 17 in lines
        assert 14 in lines
        assert "q_helper" in lines_by_func(dslice)

    def test_pruned_slice_is_exact(self):
        session, dslice = self._slice(prune=True)
        by_func = lines_by_func(dslice)
        lines = by_func.get("main", set())
        assert {15, 16, 20} <= lines        # d = 7; e = d + 1; w = e + d
        assert 17 not in lines              # the guard is gone
        assert 14 not in lines              # and so is c = input()
        assert "q_helper" not in by_func    # and the whole callee

    def test_pruning_never_grows_the_slice(self):
        _s1, unpruned = self._slice(prune=False)
        _s2, pruned = self._slice(prune=True)
        assert set(pruned.nodes) <= set(unpruned.nodes)
        assert len(pruned) < len(unpruned)

    def test_verified_pairs_detected(self):
        session, _ = self._slice(prune=True)
        assert session.collector.save_restore.pair_count > 0
