"""RIX1 index serde: round-trip fidelity and corruption diagnostics.

Satellite spec, verbatim: serialization round-trip equality on the CSR
columns and memo behaviour, rejection of stale fingerprints, and
table-driven corrupt-blob tests (truncated, CRC flip, version skew)
mirroring the pinball format suite.
"""

import struct

import pytest

from repro.pinplay.pinball import PinballFormatError
from repro.slicing import SliceOptions, SlicingSession
from repro.slicing.ddg_serde import (FORMAT_VERSION, MAGIC, FrozenIndex,
                                     deserialize_index, options_fingerprint,
                                     serialize_index)

from tests.support.progen import build_program, record_pinball

SEED = 7


@pytest.fixture(scope="module")
def built():
    """One cold session with its DDG index built, plus the frozen blob."""
    program = build_program(SEED)
    pinball = record_pinball(program, SEED)
    options = SliceOptions()
    session = SlicingSession(pinball, program, options)
    index = session.slicer.ddg
    fingerprint = options_fingerprint(options)
    blob = serialize_index(index, fingerprint)
    return program, pinball, options, index, fingerprint, blob


class TestFingerprint:
    def test_stable_across_calls(self):
        assert (options_fingerprint(SliceOptions())
                == options_fingerprint(SliceOptions()))

    def test_build_strategy_fields_are_excluded(self):
        """Sharded / row-store / cache-tuned builds share one entry."""
        base = options_fingerprint(SliceOptions())
        assert options_fingerprint(SliceOptions(
            shards=4, columnar=False, slice_cache_size=1)) == base

    def test_graph_semantic_fields_change_it(self):
        base = options_fingerprint(SliceOptions())
        assert options_fingerprint(SliceOptions(max_save=3)) != base
        assert options_fingerprint(
            SliceOptions(record_values=False)) != base


class TestRoundTrip:
    def test_csr_columns_identical(self, built):
        _, _, options, index, fingerprint, blob = built
        frozen = deserialize_index(blob, options=options,
                                   fingerprint=fingerprint)
        assert isinstance(frozen, FrozenIndex)
        assert list(frozen._indptr) == list(index._indptr)
        assert list(frozen._preds) == list(index._preds)
        assert bytes(frozen._kinds) == bytes(index._kinds)
        assert list(frozen._elocs) == list(index._elocs)
        assert list(frozen._tids) == list(index._tids)
        assert list(frozen._tindexes) == list(index._tindexes)
        assert frozen.node_count == index.node_count
        assert frozen.edge_count == index.edge_count

    def test_location_and_def_position_tables(self, built):
        _, _, options, index, fingerprint, blob = built
        frozen = deserialize_index(blob, options=options,
                                   fingerprint=fingerprint)
        assert frozen._locs == list(index._locs)
        assert len(frozen._def_positions) == len(index._def_positions)
        for mine, theirs in zip(frozen._def_positions,
                                index._def_positions):
            assert list(mine) == list(theirs)
        assert frozen._unresolved == {
            g: tuple(locids) for g, locids in index._unresolved.items()}
        assert frozen._redirect == dict(index._redirect)

    def test_slices_are_equal(self, built):
        _, _, options, index, fingerprint, blob = built
        frozen = deserialize_index(blob, options=options,
                                   fingerprint=fingerprint)
        criterion = frozen.instance_of(frozen.node_count - 1)
        cold = index.slice(criterion)
        warm = frozen.slice(criterion)
        assert warm.to_dict() == cold.to_dict()

    def test_memo_behaviour_survives(self, built):
        """The inherited memo layers work on a frozen index."""
        _, _, options, _, fingerprint, blob = built
        frozen = deserialize_index(blob, options=options,
                                   fingerprint=fingerprint)
        criterion = frozen.instance_of(frozen.node_count - 1)
        frozen.slice(criterion)
        assert frozen.cache_misses >= 1
        before = frozen.cache_hits
        frozen.slice(criterion)
        assert frozen.cache_hits == before + 1

    def test_stats_flag_frozen(self, built):
        _, _, options, _, fingerprint, blob = built
        frozen = deserialize_index(blob, options=options,
                                   fingerprint=fingerprint)
        stats = frozen.stats()
        assert stats["frozen"] is True
        assert stats["node_count"] == frozen.node_count


class TestFingerprintRejection:
    def test_stale_fingerprint_is_rejected(self, built):
        _, _, options, _, _, blob = built
        stale = options_fingerprint(SliceOptions(max_save=3))
        with pytest.raises(PinballFormatError, match="fingerprint"):
            deserialize_index(blob, options=options, fingerprint=stale)

    def test_no_fingerprint_skips_the_check(self, built):
        _, _, options, _, _, blob = built
        assert deserialize_index(blob, options=options) is not None


# ---------------------------------------------------------------------------
# Table-driven corruption: every mutilation is a typed, named error.
# ---------------------------------------------------------------------------

def _flip_section_byte(blob: bytes) -> bytes:
    """Flip one byte inside the first compressed section (CRC trips)."""
    _, header_len = struct.unpack_from("<HI", blob, len(MAGIC))
    offset = len(MAGIC) + struct.calcsize("<HI") + header_len + 4
    return blob[:offset] + bytes([blob[offset] ^ 0xFF]) + blob[offset + 1:]


def _bump_version(blob: bytes) -> bytes:
    head = struct.pack("<HI", FORMAT_VERSION + 1,
                       struct.unpack_from("<HI", blob, len(MAGIC))[1])
    return MAGIC + head + blob[len(MAGIC) + len(head):]


CORRUPTIONS = [
    ("empty", lambda blob: b"", "truncated"),
    ("short", lambda blob: blob[:6], "truncated"),
    ("bad_magic", lambda blob: b"XIX1" + blob[4:], "bad magic"),
    ("version_skew", _bump_version, "unsupported index format version"),
    ("header_cut", lambda blob: blob[:16], "truncated inside the header"),
    ("section_cut", lambda blob: blob[:len(blob) // 2], "truncated"),
    ("crc_flip", _flip_section_byte, "CRC mismatch"),
    ("trailing", lambda blob: blob + b"junk", "trailing bytes"),
]


class TestCorruptBlobs:
    @pytest.mark.parametrize(
        "mutilate,needle",
        [row[1:] for row in CORRUPTIONS],
        ids=[row[0] for row in CORRUPTIONS])
    def test_corruption_is_a_typed_named_error(self, built, mutilate,
                                               needle):
        _, _, options, _, fingerprint, blob = built
        bad = mutilate(blob)
        with pytest.raises(PinballFormatError) as excinfo:
            deserialize_index(bad, options=options, source="<test-blob>",
                              fingerprint=fingerprint)
        assert needle in str(excinfo.value)
        assert "<test-blob>" in str(excinfo.value)

    def test_good_blob_still_loads_after_the_table_ran(self, built):
        """The mutations above never touched the original blob."""
        _, _, options, _, fingerprint, blob = built
        assert deserialize_index(blob, options=options,
                                 fingerprint=fingerprint) is not None
