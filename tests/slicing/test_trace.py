"""Unit tests for trace records and the trace store."""

from repro.slicing.trace import TraceRecord, TraceStore


def record(tid=0, tindex=0, addr=0, rdefs=(), ruses=(), mdefs=(), muses=(),
           cd=None, line=None):
    return TraceRecord(tid=tid, tindex=tindex, addr=addr, line=line,
                       func="f", rdefs=tuple(rdefs), ruses=tuple(ruses),
                       mdefs=tuple(mdefs), muses=tuple(muses), cd=cd)


class TestTraceRecord:
    def test_locations_tagged_by_kind(self):
        rec = record(tid=2, rdefs=("r0",), mdefs=(100,),
                     ruses=("r1",), muses=(200,))
        assert set(rec.def_locations()) == {("r", 2, "r0"), ("m", 100)}
        assert set(rec.use_locations()) == {("r", 2, "r1"), ("m", 200)}

    def test_register_locations_are_per_thread(self):
        a = record(tid=1, rdefs=("r0",))
        b = record(tid=2, rdefs=("r0",))
        assert set(a.def_locations()) != set(b.def_locations())

    def test_instance_identity(self):
        assert record(tid=3, tindex=7).instance == (3, 7)

    def test_gpos_defaults_unset(self):
        assert record().gpos == -1


class TestTraceStore:
    def test_append_and_get(self):
        store = TraceStore()
        store.append(record(tid=0, tindex=0))
        store.append(record(tid=0, tindex=1))
        store.append(record(tid=1, tindex=0))
        assert store.get((0, 1)).tindex == 1
        assert store.get((1, 0)).tid == 1

    def test_lengths_and_totals(self):
        store = TraceStore()
        for i in range(5):
            store.append(record(tid=0, tindex=i))
        for i in range(3):
            store.append(record(tid=2, tindex=i))
        assert store.thread_length(0) == 5
        assert store.thread_length(2) == 3
        assert store.thread_length(9) == 0
        assert store.total_records() == 8
        assert store.threads() == [0, 2]

    def test_contains(self):
        store = TraceStore()
        store.append(record(tid=0, tindex=0))
        assert (0, 0) in store
        assert (0, 1) not in store
        assert (1, 0) not in store
