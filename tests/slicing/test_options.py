"""Tests for slicing options validation and defaults."""

import pytest

from repro.slicing import SliceOptions


class TestValidation:
    def test_defaults_match_paper_configuration(self):
        options = SliceOptions()
        assert options.refine_cfg            # Section 5.1 on
        assert options.prune_save_restore    # Section 5.2 on
        assert options.max_save == 10        # the paper's MaxSave
        assert not options.discover_jump_tables
        assert not options.track_stack_pointer

    def test_negative_max_save_rejected(self):
        with pytest.raises(ValueError):
            SliceOptions(max_save=-1)

    def test_zero_block_size_rejected(self):
        with pytest.raises(ValueError):
            SliceOptions(block_size=0)

    def test_frozen(self):
        options = SliceOptions()
        with pytest.raises(Exception):
            options.max_save = 5

    def test_max_save_zero_is_valid_disable(self):
        assert SliceOptions(max_save=0).max_save == 0
