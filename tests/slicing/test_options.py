"""Tests for slicing options validation and defaults."""

import pytest

from repro.slicing import SliceOptions


class TestValidation:
    def test_defaults_match_paper_configuration(self):
        options = SliceOptions()
        assert options.refine_cfg            # Section 5.1 on
        assert options.prune_save_restore    # Section 5.2 on
        assert options.max_save == 10        # the paper's MaxSave
        assert not options.discover_jump_tables
        assert not options.track_stack_pointer

    def test_negative_max_save_rejected(self):
        with pytest.raises(ValueError):
            SliceOptions(max_save=-1)

    def test_zero_block_size_rejected(self):
        with pytest.raises(ValueError):
            SliceOptions(block_size=0)

    def test_frozen(self):
        options = SliceOptions()
        with pytest.raises(Exception):
            options.max_save = 5

    def test_max_save_zero_is_valid_disable(self):
        assert SliceOptions(max_save=0).max_save == 0


class TestIndexSelection:
    def test_default_index_is_ddg(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLICE_INDEX", raising=False)
        assert SliceOptions().index == "ddg"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLICE_INDEX", "rows")
        assert SliceOptions().index == "rows"
        monkeypatch.setenv("REPRO_SLICE_INDEX", "columnar")
        assert SliceOptions().index == "columnar"

    def test_explicit_index_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLICE_INDEX", "rows")
        assert SliceOptions(index="ddg").index == "ddg"

    def test_unknown_index_rejected(self):
        with pytest.raises(ValueError):
            SliceOptions(index="quantum")

    def test_negative_cache_sizes_rejected(self):
        with pytest.raises(ValueError):
            SliceOptions(slice_cache_size=-1)
        with pytest.raises(ValueError):
            SliceOptions(closure_memo_size=-1)

    def test_zero_cache_sizes_disable(self):
        options = SliceOptions(slice_cache_size=0, closure_memo_size=0)
        assert options.slice_cache_size == 0
        assert options.closure_memo_size == 0
