"""Unit tests for the build-once CSR dependence index (repro.slicing.ddg).

Structural CSR invariants, the two memo layers (closure fragments and
the slice-result LRU), the session-level amortization stats, and the
lazily built criterion reverse indexes that replaced the per-call trace
scans in :class:`SlicingSession`.
"""

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import DependenceIndex, SliceOptions, SlicingSession
from repro.slicing.ddg import EDGE_CONTROL, EDGE_DATA
from repro.vm import RandomScheduler, RoundRobinScheduler

SOURCE = """
int g0; int g1; int m;

int worker(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        lock(&m);
        g0 = g0 + i;
        unlock(&m);
        g1 = g1 ^ g0;
    }
    return g1;
}

int main() {
    int t; int r;
    g0 = input();
    g1 = 3;
    t = spawn(worker, 4);
    r = worker(2);
    join(t);
    print(g0); print(g1); print(r);
    return 0;
}
"""


def make_session(options=None, columnar=True, seed=7):
    program = compile_source(SOURCE, name="ddg-unit")
    pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=0.3), RegionSpec(),
        inputs=[5], rand_seed=seed)
    opts = options or SliceOptions(index="ddg", columnar=columnar)
    return SlicingSession(pinball, program, opts)


@pytest.fixture(scope="module")
def session():
    return make_session()


@pytest.fixture(scope="module")
def ddg(session):
    return session.slicer.ddg


class TestCsrInvariants:
    def test_indptr_shape(self, session, ddg):
        indptr = ddg._indptr
        assert indptr[0] == 0
        assert indptr[-1] == len(ddg._preds)
        assert ddg.node_count == len(session.gtrace.order)
        assert all(indptr[i] <= indptr[i + 1]
                   for i in range(len(indptr) - 1))

    def test_parallel_columns_aligned(self, ddg):
        assert len(ddg._preds) == len(ddg._kinds) == len(ddg._elocs)
        assert ddg.edge_count == len(ddg._preds)

    def test_producers_strictly_precede_consumers(self, ddg):
        for g in range(ddg.node_count):
            for e in range(ddg._indptr[g], ddg._indptr[g + 1]):
                assert 0 <= ddg._preds[e] < g

    def test_edge_kinds_and_location_ids(self, ddg):
        for e in range(ddg.edge_count):
            kind = ddg._kinds[e]
            assert kind in (EDGE_DATA, EDGE_CONTROL)
            if kind == EDGE_CONTROL:
                assert ddg._elocs[e] == -1
            else:
                assert 0 <= ddg._elocs[e] < len(ddg._locs)

    def test_locations_interned_once(self, ddg):
        assert len(ddg._locs) == len(set(ddg._locs))
        assert all(ddg._loc_ids[loc] == i
                   for i, loc in enumerate(ddg._locs))

    def test_def_positions_sorted(self, ddg):
        assert len(ddg._def_positions) == len(ddg._locs)
        for positions in ddg._def_positions:
            assert positions == sorted(positions)


class TestMemoLayers:
    def test_slice_result_lru_hit(self):
        session = make_session()
        criterion = session.last_reads(1)[0]
        first = session.slice_for(criterion)
        second = session.slice_for(criterion)
        assert first is second
        assert session.slicer.ddg.cache_hits == 1

    def test_lru_eviction_at_capacity_one(self):
        session = make_session(SliceOptions(index="ddg", slice_cache_size=1))
        a, b = session.last_reads(2)
        session.slice_for(a)
        session.slice_for(b)                       # evicts a
        ddg = session.slicer.ddg
        assert len(ddg._slice_cache) == 1
        session.slice_for(a)                       # miss again
        assert ddg.cache_hits == 0
        assert ddg.cache_misses == 3
        assert ddg.stats()["slice_cache_entries"] == 1

    def test_closure_memo_reused_across_queries(self):
        session = make_session(SliceOptions(index="ddg",
                                            slice_cache_size=0))
        criterion = session.last_reads(1)[0]
        first = session.slice_for(criterion)
        second = session.slice_for(criterion)
        ddg = session.slicer.ddg
        assert ddg.memo_hits >= 1
        assert second.stats["closure_memo_hits"] >= 1
        assert set(first.nodes) == set(second.nodes)
        assert sorted(first.edges) == sorted(second.edges)

    def test_disabled_memos_still_correct(self):
        baseline = make_session()
        criterion = baseline.last_reads(1)[0]
        reference = baseline.slice_for(criterion)
        session = make_session(SliceOptions(index="ddg", slice_cache_size=0,
                                            closure_memo_size=0))
        dslice = session.slice_for(criterion)
        ddg = session.slicer.ddg
        assert not ddg._slice_cache and not ddg._closure_memo
        assert set(dslice.nodes) == set(reference.nodes)
        assert sorted(dslice.edges) == sorted(reference.edges)


class TestSessionStats:
    def test_stats_zero_before_first_query(self):
        session = make_session()
        stats = session.stats()
        assert stats["slice_index"] == "ddg"
        assert stats["ddg_build_time_sec"] == 0.0
        assert stats["edge_count"] == 0
        assert stats["memo_hits"] == 0 and stats["memo_misses"] == 0

    def test_stats_populated_after_query(self):
        session = make_session()
        criterion = session.last_reads(1)[0]
        session.slice_for(criterion)
        session.slice_for(criterion)
        stats = session.stats()
        assert stats["ddg_build_time_sec"] > 0
        assert stats["edge_count"] > 0
        assert stats["memo_hits"] >= 1       # the slice-cache hit counts
        assert stats["memo_misses"] >= 1
        assert stats["slice_cache_hits"] == 1

    def test_scan_engines_report_zero_ddg_stats(self):
        session = make_session(SliceOptions(index="columnar"))
        session.slice_for(session.last_reads(1)[0])
        stats = session.stats()
        assert stats["slice_index"] == "columnar"
        assert stats["edge_count"] == 0
        assert stats["ddg_build_time_sec"] == 0.0

    def test_direct_index_stats(self, session, ddg):
        stats = ddg.stats()
        for key in ("build_time_sec", "node_count", "edge_count",
                    "location_count", "bypassed_edges", "memo_hits",
                    "memo_misses", "cache_hits", "cache_misses",
                    "closure_memo_entries", "slice_cache_entries"):
            assert key in stats
        assert stats["node_count"] == ddg.node_count

    def test_ddg_built_lazily(self):
        session = make_session()
        assert session.slicer._ddg is None
        session.slice_for(session.last_reads(1)[0])
        assert isinstance(session.slicer._ddg, DependenceIndex)


class TestCriterionReverseIndexes:
    """The lazily built reverse indexes must equal brute-force scans."""

    def brute_force(self, session):
        store = session.collector.store
        line_best, write_best, reads = {}, {}, []
        for tid in store.threads():
            for tindex in range(store.thread_length(tid)):
                rec = store.get((tid, tindex))
                if rec.line is not None:
                    cur = line_best.get(rec.line)
                    if cur is None or rec.gpos > cur[0]:
                        line_best[rec.line] = (rec.gpos, (tid, tindex))
                for addr in rec.mdefs:
                    cur = write_best.get(addr)
                    if cur is None or rec.gpos > cur[0]:
                        write_best[addr] = (rec.gpos, (tid, tindex))
                if rec.muses:
                    reads.append((rec.gpos, (tid, tindex)))
        reads.sort()
        return line_best, write_best, reads

    @pytest.mark.parametrize("columnar", (True, False))
    def test_matches_brute_force(self, columnar):
        session = make_session(
            SliceOptions(index="ddg", columnar=columnar), columnar=columnar)
        line_best, write_best, reads = self.brute_force(session)
        for line, (_gpos, inst) in line_best.items():
            assert session.last_instance_at_line(line) == inst
        for name in ("g0", "g1"):
            var = session.program.globals[name]
            best = max((write_best[addr]
                        for addr in range(var.addr,
                                          var.addr + max(1, var.size))
                        if addr in write_best))
            assert session.last_write_to_global(name) == best[1]
        for count in (1, 3, 10):
            expected = [inst for _g, inst in reads[:-count - 1:-1]]
            assert session.last_reads(count) == expected

    def test_per_thread_filters(self):
        session = make_session()
        store = session.collector.store
        for tid in store.threads():
            lines = {}
            for tindex in range(store.thread_length(tid)):
                rec = store.get((tid, tindex))
                if rec.line is not None:
                    cur = lines.get(rec.line)
                    if cur is None or rec.gpos > cur[0]:
                        lines[rec.line] = (rec.gpos, (tid, tindex))
            for line, (_gpos, inst) in lines.items():
                assert session.last_instance_at_line(line, tid=tid) == inst
