"""Tests for dynamic control-dependence detection (Xin-Zhang online)."""

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, replay
from repro.slicing import SliceOptions, TraceCollector
from repro.vm import RoundRobinScheduler


def trace_program(source, options=None, inputs=()):
    program = compile_source(source)
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                            inputs=inputs)
    collector = TraceCollector(program, options or SliceOptions())
    replay(pinball, program, tools=[collector], verify=False)
    return program, collector


def cd_lines(program, collector, tid=0):
    """Map line -> set of lines its instructions are control dependent on."""
    result = {}
    records = collector.store.by_thread[tid]
    for rec in records:
        if rec.line is None:
            continue
        if rec.cd is not None:
            parent = collector.store.get(rec.cd)
            if parent.line is not None and parent.line != rec.line:
                result.setdefault(rec.line, set()).add(parent.line)
    return result


class TestIfElse:
    SOURCE = """
int g;
int main() {
    int x; int y;
    x = input();
    if (x > 0) {
        y = 1;
    } else {
        y = 2;
    }
    g = y;
    return 0;
}
"""

    def test_then_branch_depends_on_condition(self):
        program, collector = trace_program(self.SOURCE, inputs=[5])
        deps = cd_lines(program, collector)
        # Line 7 (y = 1) is control dependent on line 6 (if).
        assert 6 in deps.get(7, set())

    def test_join_point_not_dependent(self):
        program, collector = trace_program(self.SOURCE, inputs=[5])
        deps = cd_lines(program, collector)
        # Line 11 (g = y) executes on both paths: no dependence on the if.
        assert 6 not in deps.get(11, set())


class TestLoops:
    SOURCE = """
int g;
int main() {
    int i;
    for (i = 0; i < 3; i = i + 1) {
        g = g + i;
    }
    g = g * 2;
    return 0;
}
"""

    def test_body_depends_on_loop_condition(self):
        program, collector = trace_program(self.SOURCE)
        deps = cd_lines(program, collector)
        assert 5 in deps.get(6, set())

    def test_code_after_loop_independent(self):
        program, collector = trace_program(self.SOURCE)
        deps = cd_lines(program, collector)
        assert 5 not in deps.get(8, set())

    def test_each_iteration_depends_on_its_own_branch_instance(self):
        program, collector = trace_program(self.SOURCE)
        records = collector.store.by_thread[0]
        body_cds = {rec.cd for rec in records
                    if rec.line == 6 and rec.cd is not None}
        # Three iterations, three distinct controlling branch instances.
        assert len(body_cds) == 3


class TestNested:
    SOURCE = """
int g;
int main() {
    int i; int j;
    for (i = 0; i < 2; i = i + 1) {
        if (i > 0) {
            g = g + 10;
        }
    }
    return 0;
}
"""

    def test_transitive_chain_through_nesting(self):
        program, collector = trace_program(self.SOURCE)
        records = collector.store.by_thread[0]
        # The body (line 7) chains: line 7 -> if (line 6) -> for (line 5).
        body = [rec for rec in records if rec.line == 7 and rec.cd]
        assert body
        if_inst = collector.store.get(body[0].cd)
        assert if_inst.line == 6
        for_inst = collector.store.get(if_inst.cd)
        assert for_inst.line == 5


class TestCalls:
    SOURCE = """
int g;
int callee(int v) {
    g = v;
    return v + 1;
}
int main() {
    int x;
    x = input();
    if (x) {
        callee(5);
    }
    return 0;
}
"""

    def test_callee_control_dependent_on_call_site(self):
        program, collector = trace_program(self.SOURCE, inputs=[1])
        records = collector.store.by_thread[0]
        callee_recs = [rec for rec in records if rec.func == "callee"]
        assert callee_recs
        # Chain: callee instr -> call instr -> guarding if.
        parent = collector.store.get(callee_recs[0].cd)
        assert parent.func == "main"
        grandparent = collector.store.get(parent.cd)
        assert grandparent.line == 10  # the if

    def test_recursion_keeps_frames_separate(self):
        source = """
int g;
int fact(int n) {
    if (n < 2) { return 1; }
    return n * fact(n - 1);
}
int main() {
    g = fact(4);
    return 0;
}
"""
        program, collector = trace_program(source)
        # Sanity: trace completed and every record has a resolvable cd.
        for rec in collector.store.by_thread[0]:
            if rec.cd is not None:
                assert rec.cd in collector.store
