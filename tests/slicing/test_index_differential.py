"""Differential tests: the build-once CSR dependence index ("ddg") is
observationally identical to the backward scanners.

The shared seeded generator (:mod:`tests.support.progen`) synthesizes
randomized multi-threaded programs (locks, races, loops, branches,
switches, calls, nondeterministic syscalls).  For every program the same
recorded region is sliced under all three index engines —

* ``"ddg"``       — forward-built CSR dependence graph + memoized closures,
* ``"columnar"``  — backward scan with LP block skipping over columns,
* ``"rows"``      — backward scan over materialized :class:`TraceRecord`s,

plus an independent row-store session (``columnar=False``), and the
slices must agree node-for-node and edge-for-edge.  The save/restore
bypass (paper Section 5.2) is exercised both enabled and disabled, and
DDG-derived slice pinballs must replay (exclusion skips, side-effect
injection) identically to scan-derived ones under both VM engines.
"""

import pytest

from repro.pinplay import relog, replay
from repro.pinplay.pinball import state_hash
from repro.slicing import BackwardSlicer, SliceOptions, SlicingSession

from tests.support.progen import build_program, record_pinball

SEEDS = list(range(12))

INDEXES = ("ddg", "columnar", "rows")


def _record(seed):
    program = build_program(seed)
    return program, record_pinball(program, seed)


def _assert_same_slice(reference, other, context):
    __tracebackhide__ = True
    assert set(reference.nodes) == set(other.nodes), (
        "slice node sets differ (%s)" % context)
    assert sorted(reference.edges) == sorted(other.edges), (
        "slice edge multisets differ (%s)" % context)
    assert reference.criterion == other.criterion


@pytest.mark.parametrize("seed", SEEDS)
def test_all_indexes_agree(seed):
    """ddg == columnar == rows == row-store scan, for read criteria and
    for location (global variable) queries."""
    program, pinball = _record(seed)
    session = SlicingSession(pinball, program)       # columnar store
    restores = session.collector.save_restore.verified
    slicers = {
        index: BackwardSlicer(session.gtrace, verified_restores=restores,
                              options=SliceOptions(index=index))
        for index in INDEXES
    }
    row_session = SlicingSession(
        pinball, program, options=SliceOptions(columnar=False, index="rows"))

    queries = [(criterion, None) for criterion in session.last_reads(5)]
    queries.append((session.last_write_to_global("g0"),
                    [session.global_location("g0")]))
    queries.append((session.last_write_to_global("g1"),
                    [session.global_location("g1")]))

    for criterion, locations in queries:
        reference = slicers["ddg"].slice(criterion, locations)
        for index in ("columnar", "rows"):
            _assert_same_slice(
                reference, slicers[index].slice(criterion, locations),
                "seed=%d index=%s criterion=%r" % (seed, index, criterion))
        _assert_same_slice(
            reference, row_session.slice_for(criterion, locations),
            "seed=%d row-store criterion=%r" % (seed, criterion))
        assert (reference.stats["unresolved_locations"]
                == slicers["columnar"].slice(criterion, locations)
                .stats["unresolved_locations"])


@pytest.mark.parametrize("seed", SEEDS[::4])
def test_indexes_agree_without_save_restore_bypass(seed):
    """Disabling the Section 5.2 bypass must change all engines in
    lockstep (slices still identical across indexes)."""
    program, pinball = _record(seed)
    session = SlicingSession(
        pinball, program, options=SliceOptions(prune_save_restore=False,
                                               index="ddg"))
    restores = session.collector.save_restore.verified
    criterion = session.last_reads(1)[0]
    reference = session.slice_for(criterion)
    for index in ("columnar", "rows"):
        other = BackwardSlicer(
            session.gtrace, verified_restores=restores,
            options=SliceOptions(prune_save_restore=False, index=index)
        ).slice(criterion)
        _assert_same_slice(reference, other,
                           "seed=%d no-bypass index=%s" % (seed, index))


@pytest.mark.parametrize("seed", SEEDS[::4])
def test_repeated_queries_hit_caches_and_stay_identical(seed):
    program, pinball = _record(seed)
    session = SlicingSession(pinball, program,
                             options=SliceOptions(index="ddg"))
    criteria = session.last_reads(3)
    first = [session.slice_for(c) for c in criteria]
    again = [session.slice_for(c) for c in criteria]
    for a, b in zip(first, again):
        _assert_same_slice(a, b, "seed=%d repeat" % seed)
    ddg = session.slicer.ddg
    assert ddg.cache_hits >= len(criteria)
    # Distinct criteria over one trace share closure fragments.
    stats = session.stats()
    assert stats["memo_hits"] >= len(criteria)


@pytest.mark.parametrize("seed", SEEDS[::3])
def test_ddg_slice_pinballs_replay_like_scan_slice_pinballs(seed):
    """Slice pinballs relogged from DDG slices replay with the same
    exclusion skips, output, and final state as scan-derived ones."""
    program, pinball = _record(seed)
    ddg_session = SlicingSession(pinball, program,
                                 options=SliceOptions(index="ddg"))
    scan_session = SlicingSession(pinball, program,
                                  options=SliceOptions(index="columnar"))
    criterion = ddg_session.last_reads(1)[0]
    ddg_slice = ddg_session.slice_for(criterion)
    scan_slice = scan_session.slice_for(criterion)
    _assert_same_slice(ddg_slice, scan_slice, "seed=%d pinball" % seed)

    ddg_pb = relog(pinball, program, ddg_slice.to_keep())
    scan_pb = relog(pinball, program, scan_slice.to_keep())
    assert ddg_pb.exclusions == scan_pb.exclusions
    assert ddg_pb.meta["kept_instructions"] == scan_pb.meta[
        "kept_instructions"]

    machines = {}
    for engine in ("legacy", "predecoded"):
        machine, _ = replay(ddg_pb, program, engine=engine, verify=False)
        machines[engine] = machine
    scan_machine, _ = replay(scan_pb, program, verify=False)
    for engine, machine in machines.items():
        assert machine.skipped_exclusions == scan_machine.skipped_exclusions
        assert list(machine.output) == list(scan_machine.output)
        assert state_hash(machine) == state_hash(scan_machine)
