"""Unit tests for save/restore pair detection."""

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, replay
from repro.slicing import SliceOptions, TraceCollector
from repro.slicing.save_restore import find_static_candidates
from repro.isa.instructions import Opcode
from repro.vm import RoundRobinScheduler

SOURCE = """
int g;
int leaf(int a) {
    int x; int y;
    x = a + 1;
    y = x * 2;
    return y;
}
int main() {
    int r;
    r = leaf(5);
    g = r;
    return 0;
}
"""


def collect(source, max_save=10, inputs=()):
    program = compile_source(source)
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                            inputs=inputs)
    collector = TraceCollector(
        program, SliceOptions(max_save=max_save))
    replay(pinball, program, tools=[collector], verify=False)
    return program, collector


class TestStaticCandidates:
    def test_prologue_pushes_found(self):
        program = compile_source(SOURCE)
        saves, restores = find_static_candidates(program, max_save=10)
        leaf = program.functions["leaf"]
        leaf_pushes = [i.addr for i in leaf.instrs if i.op == Opcode.PUSH]
        # The prologue pushes (fp, r4, r5) are all candidates.
        assert set(leaf_pushes[:3]) <= saves

    def test_epilogue_pops_found(self):
        program = compile_source(SOURCE)
        _saves, restores = find_static_candidates(program, max_save=10)
        leaf = program.functions["leaf"]
        leaf_pops = [i.addr for i in leaf.instrs if i.op == Opcode.POP]
        assert set(leaf_pops) <= restores

    def test_max_save_zero_disables(self):
        program = compile_source(SOURCE)
        saves, restores = find_static_candidates(program, max_save=0)
        assert saves == set() and restores == set()

    def test_max_save_limits_window(self):
        program = compile_source(SOURCE)
        saves_1, _ = find_static_candidates(program, max_save=1)
        saves_10, _ = find_static_candidates(program, max_save=10)
        assert len(saves_1) < len(saves_10)


class TestDynamicVerification:
    def test_pairs_verified_per_call(self):
        program, collector = collect(SOURCE)
        detector = collector.save_restore
        # leaf saves/restores fp, r4, r5; main saves/restores fp, r4.
        assert detector.pair_count >= 4

    def test_pair_links_restore_to_save(self):
        program, collector = collect(SOURCE)
        for restore, save in collector.save_restore.verified.items():
            assert restore[0] == save[0]         # same thread
            assert save[1] < restore[1]          # save precedes restore
            save_rec = collector.store.get(save)
            restore_rec = collector.store.get(restore)
            assert program.instructions[save_rec.addr].op == Opcode.PUSH
            assert program.instructions[restore_rec.addr].op == Opcode.POP

    def test_clobbered_register_not_verified(self):
        # A function that pushes a register, overwrites the stack slot,
        # and pops a different value: the pair must NOT verify.
        from repro.isa import assemble
        source = """
func tricky
  push fp
  mov fp, sp
  push r4
  mov r3, 99
  st [sp], r3
  pop r4
  mov sp, fp
  pop fp
  ret
func main
  mov r4, 7
  call tricky
  halt
"""
        program = assemble(source)
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        collector = TraceCollector(program, SliceOptions())
        replay(pinball, program, tools=[collector], verify=False)
        tricky = program.functions["tricky"]
        r4_pop = next(i.addr for i in tricky.instrs
                      if i.op == Opcode.POP and i.operands[0].name == "r4")
        verified_restore_addrs = {
            collector.store.get(restore).addr
            for restore in collector.save_restore.verified}
        assert r4_pop not in verified_restore_addrs

    def test_recursion_pairs_per_frame(self):
        source = """
int fact(int n) {
    int t;
    if (n < 2) { return 1; }
    t = fact(n - 1);
    return n * t;
}
int main() { return fact(4); }
"""
        program, collector = collect(source)
        # 4 dynamic calls to fact + 1 to main, each verifying fp and r4.
        assert collector.save_restore.pair_count >= 8

    def test_multithreaded_pairs_tracked_independently(self):
        source = """
int g;
int work(int n) {
    int x;
    x = n * 2;
    return x;
}
int main() {
    int t;
    t = spawn(work, 3);
    g = work(4);
    join(t);
    return 0;
}
"""
        program, collector = collect(source)
        tids = {restore[0]
                for restore in collector.save_restore.verified}
        assert {0, 1} <= tids
