"""Region-sharded tracing is byte-identical to the serial pipeline.

The tentpole invariant of the sharded build (:mod:`repro.slicing.shard`)
is that splitting the traced replay into K windows changes *when* work
happens but never *what* is produced.  This suite proves it three ways
over the shared randomized corpus (:mod:`tests.support.progen`):

* **10-seed differential** — for ``shards in {2, 4}``, the sharded
  session's per-thread trace columns, verified save/restore pairs, CFG
  refinements, CSR DDG arrays, slices (value-level fingerprints) and
  slice-pinball bytes all equal the serial ``shards=1`` build's.
* **Seam mid save/restore pair** — a boundary parked strictly between a
  verified save and its restore (located via the replay's ``event.seq``
  step clock) still stitches to the identical result, and the seam
  diagnostics counter records the open save frame carried across it.
* **Seam mid critical section** — same, with the boundary between a
  ``lock`` and its matching ``unlock``.

Explicit ``shard_boundaries`` bypass the minimum-window-size fallback
gate, so the seams land exactly where the test computed them.
"""

import pytest

from repro.obs.registry import OBS
from repro.pinplay.replayer import replay
from repro.slicing.api import SlicingSession
from repro.slicing.options import SliceOptions
from repro.vm.hooks import Tool

from tests.support.progen import build_program, record_pinball

SEEDS = range(10)
SHARD_COUNTS = (2, 4)


# -- fingerprints -------------------------------------------------------------

def columns_of(collector):
    """Value-level dump of the columnar store (statics, dyns, gpos)."""
    store = collector.store
    return {tid: (list(cols.statics), list(cols.dyns), list(cols.gpos))
            for tid, cols in store._columns.items()}


def slice_key(dslice, with_values=True):
    """Value-level fingerprint of a slice (SliceNode has no ``__eq__``)."""
    return (sorted(dslice.nodes),
            sorted(dslice.edges),
            dslice.criterion,
            sorted((inst, node.addr, node.line, node.func,
                    node.values if with_values else None)
                   for inst, node in dslice.nodes.items()))


def ddg_arrays(session):
    """The CSR dependence-index arrays (forces the build)."""
    ddg = session.slicer.ddg
    if not hasattr(ddg, "_indptr"):
        # Under REPRO_SLICE_INDEX=reexec the serial session's slicer is
        # the re-execution index, which builds no CSR arrays; compile
        # the reference index from the session's materialized trace.
        from repro.slicing.ddg import DependenceIndex
        ddg = DependenceIndex(session.gtrace,
                              session.collector.save_restore.verified,
                              session.options)
    return (list(ddg._indptr), list(ddg._preds), list(ddg._kinds),
            list(ddg._elocs), list(ddg._unresolved), list(ddg._locs))


def criteria_for(session):
    """A few representative criteria: reads, global writes, the failure."""
    criteria = list(session.last_reads(3))
    for name in ("g0", "g1", "g2", "g3"):
        try:
            criteria.append(session.last_write_to_global(name))
        except ValueError:
            pass
    try:
        criteria.append(session.failure_criterion())
    except ValueError:
        pass
    seen, out = set(), []
    for criterion in criteria:
        if criterion not in seen:
            seen.add(criterion)
            out.append(criterion)
    return out


def assert_sessions_identical(serial, sharded):
    """Every observable artifact of the two sessions must match."""
    assert sharded.shard_plan is not None
    assert sharded.shard_plan.fallback is None, sharded.shard_plan.fallback
    assert columns_of(sharded.collector) == columns_of(serial.collector)
    assert (sharded.collector.save_restore.verified
            == serial.collector.save_restore.verified)
    assert (sharded.collector.save_restore.pair_count
            == serial.collector.save_restore.pair_count)
    assert (sharded.collector.registry.refinements
            == serial.collector.registry.refinements)
    assert ddg_arrays(sharded) == ddg_arrays(serial)
    criteria = criteria_for(serial)
    assert criteria, "corpus program produced no slice criteria"
    # The reexec engine deliberately carries no node values (the slice
    # serialization — to_dict — is the byte-identity contract, and it
    # excludes values); compare them only when both engines record them.
    with_values = serial._reexec is None and sharded._reexec is None
    for criterion in criteria:
        assert (slice_key(sharded.slice_for(criterion), with_values)
                == slice_key(serial.slice_for(criterion), with_values)), \
            criterion
    # The relogged slice pinball must match byte for byte.
    chosen = criteria[0]
    serial_pb = serial.make_slice_pinball(serial.slice_for(chosen))
    sharded_pb = sharded.make_slice_pinball(sharded.slice_for(chosen))
    assert (sharded_pb.to_bytes(compress=False)
            == serial_pb.to_bytes(compress=False))


# -- corpus -------------------------------------------------------------------

@pytest.fixture(scope="module")
def corpus():
    """Lazily built (program, pinball, serial session) per seed."""
    cache = {}

    def get(seed):
        if seed not in cache:
            program = build_program(seed)
            pinball = record_pinball(program, seed)
            serial = SlicingSession(pinball, program,
                                    SliceOptions(shards=1))
            cache[seed] = (program, pinball, serial)
        return cache[seed]

    return get


# -- the 10-seed differential -------------------------------------------------

@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_matches_serial(corpus, seed, shards):
    program, pinball, serial = corpus(seed)
    sharded = SlicingSession(pinball, program, SliceOptions(shards=shards))
    assert_sessions_identical(serial, sharded)
    plan = sharded.shard_plan
    assert len(plan.windows) == len(plan.boundaries) + 1
    assert plan.rows == serial.collector.store.total_records()
    stats = sharded.stats()
    assert stats["shards"] == shards
    assert stats["shard_plan"]["fallback"] is None


# -- seam placement -----------------------------------------------------------

class _SeqLog(Tool):
    """Map each retired instance to its step clock; log syscalls."""

    wants_instr_events = True
    retains_instr_events = False

    def __init__(self):
        self.seq_of = {}
        self.syscalls = []

    def on_instr(self, event):
        self.seq_of[(event.tid, event.tindex)] = event.seq

    def on_syscall(self, event):
        self.syscalls.append((event.seq, event.tid, event.name))


def _step_log(pinball, program):
    log = _SeqLog()
    replay(pinball, program, tools=[log], verify=False)
    return log


def _save_restore_seam(serial, log):
    """A step boundary strictly inside the widest verified pair."""
    best = None
    for restore, save in serial.collector.save_restore.verified.items():
        seq_save = log.seq_of.get(save)
        seq_restore = log.seq_of.get(restore)
        if seq_save is None or seq_restore is None:
            continue
        if seq_restore - seq_save >= 4 and (
                best is None or seq_restore - seq_save > best[1] - best[0]):
            best = (seq_save, seq_restore)
    assert best is not None, "no verified save/restore pair wide enough"
    return (best[0] + best[1]) // 2


def _critical_section_seam(log):
    """A step boundary strictly inside the widest lock/unlock section."""
    pending = {}
    best = None
    for seq, tid, name in log.syscalls:
        if name == "lock":
            pending[tid] = seq
        elif name == "unlock" and tid in pending:
            start = pending.pop(tid)
            if seq - start >= 4 and (
                    best is None or seq - start > best[1] - best[0]):
                best = (start, seq)
    assert best is not None, "no critical section wide enough"
    return (best[0] + best[1]) // 2


def _assert_seam_equivalent(corpus, seed, boundary, seam_counter):
    program, pinball, serial = corpus(seed)
    assert 0 < boundary < pinball.total_steps
    with OBS.scope(enabled=True):
        before = OBS.counters().get(seam_counter, 0)
        sharded = SlicingSession(pinball, program, SliceOptions(shards=2),
                                 shard_boundaries=[boundary])
        carried = OBS.counters().get(seam_counter, 0) - before
    assert sharded.shard_plan.boundaries == [boundary]
    # The seam really was parked inside the pair/section: the stitch
    # carried at least one open frame/region across it.
    assert carried > 0, seam_counter
    assert_sessions_identical(serial, sharded)


@pytest.mark.parametrize("seed", (0, 3))
def test_seam_mid_save_restore_pair(corpus, seed):
    program, pinball, serial = corpus(seed)
    log = _step_log(pinball, program)
    boundary = _save_restore_seam(serial, log)
    _assert_seam_equivalent(corpus, seed, boundary,
                            "slicing.shard/seam_open_saves")


@pytest.mark.parametrize("seed", (0, 3))
def test_seam_mid_critical_section(corpus, seed):
    program, pinball, serial = corpus(seed)
    log = _step_log(pinball, program)
    boundary = _critical_section_seam(log)
    # Inside a lock-protected loop body the stitch necessarily carries
    # open dynamic control regions across the seam (the lock ownership
    # itself travels in the boundary snapshot).
    _assert_seam_equivalent(corpus, seed, boundary,
                            "slicing.shard/seam_open_regions")


def test_explicit_boundaries_bypass_size_gate(corpus):
    """A tiny window count from explicit boundaries still shards."""
    program, pinball, serial = corpus(1)
    quarter = pinball.total_steps // 4
    sharded = SlicingSession(
        pinball, program, SliceOptions(shards=1),
        shard_boundaries=[quarter, 2 * quarter, 3 * quarter])
    assert sharded.shard_plan.fallback is None
    assert len(sharded.shard_plan.windows) == 4
    assert_sessions_identical(serial, sharded)
