"""Unit tests for the backward slicer's mechanics."""

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.slicing import SliceOptions, SlicingSession

STRAIGHT_LINE = """
int a; int b; int c; int unrelated;
int main() {
    a = 3;
    unrelated = 99;
    b = a + 4;
    unrelated = unrelated + 1;
    c = b * 2;
    return 0;
}
"""


def session_for(source, inputs=(), options=None, name="slicer-test"):
    program = compile_source(source, name=name)
    from repro.vm import RoundRobinScheduler
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec(),
                            inputs=inputs)
    return SlicingSession(pinball, program, options or SliceOptions())


def slice_lines(dslice):
    return {node.line for node in dslice.nodes.values()
            if node.line is not None}


class TestDataChains:
    def test_transitive_data_dependences(self):
        session = session_for(STRAIGHT_LINE)
        dslice = session.slice_for_global("c")
        lines = slice_lines(dslice)
        assert {4, 6, 8} <= lines          # a = 3; b = a + 4; c = b * 2

    def test_unrelated_statements_excluded(self):
        session = session_for(STRAIGHT_LINE)
        dslice = session.slice_for_global("c")
        lines = slice_lines(dslice)
        assert 5 not in lines and 7 not in lines

    def test_slice_for_intermediate_value(self):
        session = session_for(STRAIGHT_LINE)
        dslice = session.slice_for_global("b")
        lines = slice_lines(dslice)
        assert {4, 6} <= lines
        assert 8 not in lines              # c's computation is downstream

    def test_redefinition_uses_latest_def(self):
        source = """
int x; int y;
int main() {
    x = 1;
    x = 2;
    y = x;
    return 0;
}
"""
        session = session_for(source)
        dslice = session.slice_for_global("y")
        lines = slice_lines(dslice)
        assert 5 in lines                  # x = 2 reaches y
        assert 4 not in lines              # x = 1 is dead

    def test_self_referential_update_chain(self):
        source = """
int s;
int main() {
    int i;
    s = 0;
    for (i = 0; i < 3; i = i + 1) {
        s = s + i;
    }
    return 0;
}
"""
        session = session_for(source)
        dslice = session.slice_for_global("s")
        # All three loop iterations' updates are in the slice.
        updates = [inst for inst in dslice.nodes.values()
                   if inst.line == 7]
        assert len({(u.tid, u.tindex) for u in updates}) >= 3


class TestCriterionForms:
    def test_failure_criterion(self, fig5):
        program, pinball, _seed = fig5
        session = SlicingSession(pinball, program)
        criterion = session.failure_criterion()
        rec = session.collector.store.get(criterion)
        assert program.instructions[rec.addr].subop == "assert"

    def test_failure_criterion_requires_failure(self):
        session = session_for(STRAIGHT_LINE)
        with pytest.raises(ValueError):
            session.failure_criterion()

    def test_last_reads(self):
        session = session_for(STRAIGHT_LINE)
        reads = session.last_reads(3)
        assert len(reads) == 3
        for instance in reads:
            assert session.collector.store.get(instance).muses

    def test_unknown_global_rejected(self):
        session = session_for(STRAIGHT_LINE)
        with pytest.raises(ValueError):
            session.slice_for_global("nope")
        with pytest.raises(ValueError):
            session.global_location("nope")

    def test_line_never_executed_rejected(self):
        session = session_for(STRAIGHT_LINE)
        with pytest.raises(ValueError):
            session.last_instance_at_line(9999)


class TestLpBlockSkipping:
    def test_small_blocks_skip_irrelevant_work(self):
        # A relevant definition, a long irrelevant middle, and a criterion
        # at the end: the scan must skip the middle blocks (they define
        # neither `early`'s address nor any then-wanted register).
        source = """
int early; int junk; int result;
int main() {
    int i;
    early = 7;
    for (i = 0; i < 400; i = i + 1) {
        junk = junk + i;
    }
    result = early + 1;
    return 0;
}
"""
        session = session_for(
            source, options=SliceOptions(block_size=64, index="columnar"))
        dslice = session.slice_for_global("result")
        assert dslice.stats["skipped_blocks"] > 0
        # The loop must not be in the slice, the early def must be.
        assert 7 not in slice_lines(dslice)
        assert 5 in slice_lines(dslice)

    def test_block_size_does_not_change_slice(self):
        source = STRAIGHT_LINE
        nodes_by_block_size = []
        for block_size in (1, 7, 64, 4096):
            session = session_for(
                source, options=SliceOptions(block_size=block_size,
                                             index="columnar"))
            dslice = session.slice_for_global("c")
            nodes_by_block_size.append(set(dslice.nodes))
        assert all(n == nodes_by_block_size[0]
                   for n in nodes_by_block_size)


class TestSliceStats:
    def test_scan_stats_populated(self):
        session = session_for(STRAIGHT_LINE,
                              options=SliceOptions(index="columnar"))
        dslice = session.slice_for_global("c")
        for key in ("scanned_records", "skipped_blocks", "visited_blocks",
                    "bypassed_deps", "nodes", "edges"):
            assert key in dslice.stats
        assert dslice.stats["nodes"] == len(dslice)

    def test_ddg_stats_populated(self):
        session = session_for(STRAIGHT_LINE,
                              options=SliceOptions(index="ddg"))
        dslice = session.slice_for_global("c")
        for key in ("engine", "nodes", "edges", "unresolved_locations",
                    "closure_memo_hits"):
            assert key in dslice.stats
        assert dslice.stats["engine"] == "ddg"
        assert dslice.stats["nodes"] == len(dslice)

    def test_unresolved_locations_for_initial_state(self):
        # Reading an uninitialised global: its value comes from initial
        # state, so the use is never resolved inside the trace.
        source = """
int never_written; int y;
int main() {
    y = never_written + 1;
    return 0;
}
"""
        session = session_for(source)
        dslice = session.slice_for_global("y")
        assert dslice.stats["unresolved_locations"] >= 1

    def test_session_stats(self):
        session = session_for(STRAIGHT_LINE)
        stats = session.stats()
        assert stats["trace_records"] > 0
        assert stats["trace_time_sec"] >= 0
        assert stats["threads"] == [0]


class TestSerializationAndNavigation:
    def test_slice_roundtrip(self, tmp_path):
        from repro.slicing import DynamicSlice
        session = session_for(STRAIGHT_LINE)
        dslice = session.slice_for_global("c")
        path = str(tmp_path / "slice.json")
        dslice.save(path)
        loaded = DynamicSlice.load(path)
        assert set(loaded.nodes) == set(dslice.nodes)
        assert loaded.criterion == dslice.criterion
        assert len(loaded.edges) == len(dslice.edges)

    def test_to_keep_covers_nodes(self):
        session = session_for(STRAIGHT_LINE)
        dslice = session.slice_for_global("c")
        keep = dslice.to_keep()
        assert sum(len(v) for v in keep.values()) == len(dslice)

    def test_deps_navigation(self):
        session = session_for(STRAIGHT_LINE)
        dslice = session.slice_for_global("c")
        criterion_deps = dslice.deps_of(dslice.criterion)
        # The criterion's producers are all slice members.
        for producer, _kind, _loc in criterion_deps:
            assert producer in dslice
