"""Direct unit tests for the trace collector's record construction."""

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, replay
from repro.slicing import SliceOptions, TraceCollector
from repro.vm import RoundRobinScheduler

SOURCE = """
int g;
int main() {
    int x;
    x = 3;
    g = x + 4;
    return 0;
}
"""


def collect(options=None, source=SOURCE):
    program = compile_source(source, name="tracer-test")
    pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
    collector = TraceCollector(program, options or SliceOptions())
    replay(pinball, program, tools=[collector], verify=False)
    return program, collector


class TestStackPointerPolicy:
    def test_sp_excluded_by_default(self):
        program, collector = collect()
        for record in collector.store.by_thread[0]:
            assert "sp" not in record.rdefs
            assert "sp" not in record.ruses

    def test_sp_included_when_requested(self):
        program, collector = collect(
            SliceOptions(track_stack_pointer=True))
        has_sp = any(
            "sp" in record.rdefs or "sp" in record.ruses
            for record in collector.store.by_thread[0])
        assert has_sp

    def test_fp_always_tracked(self):
        program, collector = collect()
        has_fp = any("fp" in record.rdefs
                     for record in collector.store.by_thread[0])
        assert has_fp


class TestValueRecording:
    def test_values_recorded_by_default(self):
        program, collector = collect()
        g_addr = program.globals["g"].addr
        writes = [record for record in collector.store.by_thread[0]
                  if g_addr in record.mdefs]
        assert writes
        assert writes[-1].values[g_addr] == 7

    def test_values_omitted_when_disabled(self):
        program, collector = collect(SliceOptions(record_values=False))
        for record in collector.store.by_thread[0]:
            assert record.values is None


class TestRecordShape:
    def test_tindex_matches_position(self):
        program, collector = collect()
        for tid, records in collector.store.by_thread.items():
            for index, record in enumerate(records):
                assert record.tid == tid
                assert record.tindex == index

    def test_line_and_func_attribution(self):
        program, collector = collect()
        lines = {record.line for record in collector.store.by_thread[0]
                 if record.line is not None}
        assert {5, 6} <= lines
        assert all(record.func == "main"
                   for record in collector.store.by_thread[0])

    def test_defs_and_uses_deduplicated(self):
        source = "int main() { int x; x = 1; x = x + x; return x; }"
        program, collector = collect(source=source)
        for record in collector.store.by_thread[0]:
            assert len(record.ruses) == len(set(record.ruses))
            assert len(record.rdefs) == len(set(record.rdefs))

    def test_trace_covers_exactly_the_region(self):
        program = compile_source(SOURCE, name="tracer-test")
        pinball = record_region(program, RoundRobinScheduler(),
                                RegionSpec(skip=4, length=6))
        collector = TraceCollector(program, SliceOptions())
        replay(pinball, program, tools=[collector], verify=False)
        assert (collector.store.thread_length(0)
                == pinball.thread_instructions(0) == 6)


class TestSpawnArgDependence:
    def test_parent_to_child_edge_through_arg_slot(self):
        """The spawn's argument write is attributed to the spawning
        instruction, so slices cross the parent->child boundary."""
        source = """
int out;
int child(int v) {
    out = v * 2;
    return 0;
}
int main() {
    int secret;
    secret = 21;
    join(spawn(child, secret));
    return 0;
}
"""
        from repro.slicing import SlicingSession
        program = compile_source(source, name="spawn-arg")
        pinball = record_region(program, RoundRobinScheduler(), RegionSpec())
        session = SlicingSession(pinball, program)
        dslice = session.slice_for_global("out")
        funcs_lines = {(node.func, node.line)
                       for node in dslice.nodes.values()}
        # The child's computation AND main's spawn-with-secret are there.
        assert any(func == "child" for func, _l in funcs_lines)
        assert any(func == "main" for func, _l in funcs_lines)
