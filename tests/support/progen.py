"""Seeded randomized multi-threaded program generator shared by suites.

One generator, many differential harnesses: the VM engine suite
(``tests/vm/test_engine_differential.py``), the slicing index suite
(``tests/slicing/test_index_differential.py``), the observability suite
(``tests/obs/test_obs_differential.py``) and the property tests all draw
their randomized workloads from here instead of carrying private copies.

The programs cover the shapes the differential suites care about: lock
acquire/release pairs, racy unlocked reads (cross-thread access-order
edges), counted loops, if/else branches, ``switch`` lowering, helper
calls, nondeterministic syscalls (``rand``/``time``/``input``) and
explicit ``yield`` points.  Everything is derived from a single integer
seed, so any two harnesses passing the same seed operate on the very
same program.

A second corpus (:func:`generate_struct_source` /
:func:`build_struct_program`) covers the struct/heap surface: linked
lists built with ``new``, chased through ``->`` field loads (by loop or
by self-recursion), struct-value locals with ``.`` access, ``delete``
teardown, and the same lock/racy-read/nondet seasoning as the flat
corpus.  The pointer-band differential suites draw from it.
"""

import random

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.vm import RandomScheduler
from repro.vm.hooks import Tool
from repro.vm.machine import Machine

#: Safety cap: every generated program terminates well under this.
STEP_CAP = 60_000

#: Scheduler preemption rate used by the shared record/run helpers.
SWITCH_PROB = 0.3

_BINOPS = ("+", "-", "*", "&", "|", "^")


def _worker(rng: random.Random, index: int) -> str:
    """One worker function: a lock-protected update loop with extras."""
    op1, op2, op3 = (rng.choice(_BINOPS) for _ in range(3))
    c1, c2, c3 = (rng.randint(1, 9) for _ in range(3))
    bound = rng.randint(3, 7)
    ga, gb = rng.sample(("g0", "g1", "g2", "g3"), 2)
    lines = [
        "int worker%d(int n) {" % index,
        "    int i; int t;",
        "    t = %d;" % rng.randint(0, 5),
        "    for (i = 0; i < n + %d; i = i + 1) {" % (bound - 3),
        "        lock(&m);",
        "        %s = %s %s %d;" % (ga, ga, op1, c1),
        "        %s = %s %s (i %s %d);" % (gb, gb, op2, op3, c2),
        "        unlock(&m);",
    ]
    # Racy unlocked read: generates cross-thread access-order edges.
    lines.append("        t = t + %s;" % rng.choice((ga, gb)))
    if rng.random() < 0.5:
        lines += [
            "        if (t > %d) { t = t - %d; } else { t = t + 1; }"
            % (c3 * 10, c3),
        ]
    if rng.random() < 0.4:
        lines += [
            "        switch (i % 4) {",
            "            case 0: t = t + %d; break;" % c1,
            "            case 1: t = t ^ %d; break;" % c2,
            "            case 2: t = helper(t); break;",
            "            default: t = t - 1; break;",
            "        }",
        ]
    if rng.random() < 0.4:
        lines.append("        t = t + rand(%d);" % rng.randint(2, 6))
    if rng.random() < 0.3:
        lines.append("        yield();")
    lines += [
        "    }",
        "    return t;",
        "}",
    ]
    return "\n".join(lines)


def generate_source(seed: int) -> str:
    """A deterministic, seed-randomized multi-threaded program."""
    rng = random.Random(seed)
    nworkers = rng.randint(1, 3)
    parts = [
        "int g0; int g1; int g2; int g3; int m;",
        "int helper(int v) {",
        "    if (v %% 2) { return v + %d; }" % rng.randint(1, 5),
        "    return v - %d;" % rng.randint(1, 5),
        "}",
    ]
    for index in range(nworkers):
        parts.append(_worker(rng, index))
    main = [
        "int main() {",
        "    int x; int r;",
        "    " + " ".join("int t%d;" % i for i in range(nworkers)),
        "    x = input();",
        "    g0 = x + %d;" % rng.randint(0, 9),
        "    g1 = %d;" % rng.randint(1, 9),
    ]
    if rng.random() < 0.5:
        main.append("    g2 = time() % 97;")
    for index in range(nworkers):
        main.append("    t%d = spawn(worker%d, %d);"
                    % (index, index, rng.randint(2, 5)))
    main.append("    r = helper(x);")
    for index in range(nworkers):
        main.append("    join(t%d);" % index)
    main += [
        "    print(g0); print(g1); print(g2); print(r);",
        "    return 0;",
        "}",
    ]
    parts.append("\n".join(main))
    return "\n".join(parts)


def build_program(seed: int):
    """Compile the generated source for ``seed``."""
    return compile_source(generate_source(seed), name="diff-%d" % seed)


# -- struct / pointer / recursion corpus --------------------------------------

_STRUCT_PRELUDE = """\
struct Node { int value; struct Node* next; };
struct Pair { int a; int b; };
int total; int m;
int rsum(struct Node* n) {
    if (n == 0) { return 0; }
    return n->value + rsum(n->next);
}
int rlen(struct Node* n) {
    if (n == 0) { return 0; }
    return 1 + rlen(n->next);
}
"""


def _struct_worker(rng: random.Random, index: int) -> str:
    """One worker: builds a heap list, chases it (loop or recursion),
    mixes in struct-value locals, and tears some of it down."""
    op = rng.choice(_BINOPS)
    c = rng.randint(1, 9)
    nodes = rng.randint(3, 6)
    recursive = rng.random() < 0.5
    lines = [
        "int sworker%d(int n) {" % index,
        "    struct Node* head; struct Node* cur; struct Node* nx;",
        "    struct Pair p;",
        "    int i; int t;",
        "    head = 0;",
        "    for (i = 0; i < n + %d; i = i + 1) {" % nodes,
        "        cur = new Node;",
        "        cur->value = i %s %d;" % (op, c),
        "        cur->next = head;",
        "        head = cur;",
    ]
    if rng.random() < 0.4:
        lines.append("        yield();")
    lines.append("    }")
    if recursive:
        lines.append("    t = rsum(head) + rlen(head);")
    else:
        lines += [
            "    t = 0;",
            "    cur = head;",
            "    while (cur != 0) {",
            "        t = t + cur->value;",
            "        cur = cur->next;",
            "    }",
        ]
    lines += [
        "    p.a = t % 101;",
        "    p.b = p.a %s %d;" % (rng.choice(_BINOPS), rng.randint(1, 5)),
        "    lock(&m);",
        "    total = total + p.b;",
        "    unlock(&m);",
        # Racy unlocked read of the shared accumulator.
        "    t = t + total;",
    ]
    if rng.random() < 0.7:
        lines += [
            "    cur = head;",
            "    while (cur != 0) {",
            "        nx = cur->next;",
            "        delete cur;",
            "        cur = nx;",
            "    }",
        ]
    if rng.random() < 0.4:
        lines.append("    t = t + rand(%d);" % rng.randint(2, 6))
    lines += [
        "    return t;",
        "}",
    ]
    return "\n".join(lines)


def generate_struct_source(seed: int) -> str:
    """A deterministic, seed-randomized struct/pointer/recursion
    program: heap lists built with ``new``, chased through ``->`` (by
    loop or by recursion), struct-value locals, and a lock-protected
    shared total with a racy unlocked read."""
    rng = random.Random(seed * 7919 + 17)
    nworkers = rng.randint(1, 2)
    parts = [_STRUCT_PRELUDE]
    for index in range(nworkers):
        parts.append(_struct_worker(rng, index))
    main = [
        "int main() {",
        "    struct Node* scratch;",
        "    int x; int r;",
        "    " + " ".join("int t%d;" % i for i in range(nworkers)),
        "    x = input();",
        "    scratch = new Node;",
        "    scratch->value = x + %d;" % rng.randint(0, 9),
        "    scratch->next = 0;",
        "    total = scratch->value;",
    ]
    for index in range(nworkers):
        main.append("    t%d = spawn(sworker%d, %d);"
                    % (index, index, rng.randint(1, 4)))
    main.append("    r = sworker%d(%d);"
                % (rng.randrange(nworkers), rng.randint(1, 3)))
    if rng.random() < 0.6:
        main.append("    delete scratch;")
    for index in range(nworkers):
        main.append("    r = r + join(t%d);" % index)
    main += [
        "    print(total); print(r);",
        "    return 0;",
        "}",
    ]
    parts.append("\n".join(main))
    return "\n".join(parts)


def build_struct_program(seed: int):
    """Compile the generated struct/pointer source for ``seed``."""
    return compile_source(generate_struct_source(seed),
                          name="sdiff-%d" % seed)


# -- shared execution / recording helpers -------------------------------------

def scheduler_for(seed: int) -> RandomScheduler:
    """The canonical scheduler every harness uses for ``seed``."""
    return RandomScheduler(seed=seed, switch_prob=SWITCH_PROB)


def inputs_for(seed: int):
    """The canonical input list for ``seed``."""
    return [seed % 11]


def run_machine(program, seed: int, engine: str = "predecoded", tool=None,
                **kwargs) -> Machine:
    """Run ``program`` to completion under the canonical seed setup."""
    machine = Machine(program, scheduler=scheduler_for(seed),
                      inputs=inputs_for(seed), rand_seed=seed,
                      engine=engine, **kwargs)
    if tool is not None:
        machine.add_tool(tool)
    machine.run(max_steps=STEP_CAP)
    assert machine.finished, "randomized program %d did not terminate" % seed
    return machine


def record_pinball(program, seed: int, **kwargs):
    """Record the whole-program region under the canonical seed setup."""
    return record_region(program, scheduler_for(seed), RegionSpec(),
                         inputs=inputs_for(seed), rand_seed=seed, **kwargs)


# -- shared observation tools -------------------------------------------------

def freeze_event(event) -> tuple:
    """An immutable, comparable rendering of one :class:`InstrEvent`."""
    return (event.seq, event.tid, event.tindex, event.addr,
            tuple(event.reg_reads), tuple(event.reg_writes),
            tuple(event.mem_reads), tuple(event.mem_writes),
            event.frame_id)


class RetainingLog(Tool):
    """Default protocol: events are immutable and may be stored as-is."""

    wants_instr_events = True      # retains_instr_events stays True

    def __init__(self):
        self.events = []
        self.syscalls = []
        self.steps = []

    def on_instr(self, event):
        self.events.append(event)   # retained: forces fresh events

    def on_syscall(self, event):
        self.syscalls.append((event.seq, event.tid, event.name,
                              tuple(event.args), event.result))

    def on_step(self, tid):
        self.steps.append(tid)

    def frozen(self):
        return [freeze_event(event) for event in self.events]


class EagerLog(Tool):
    """Non-retaining protocol: triggers the recycled scratch-event path."""

    wants_instr_events = True
    retains_instr_events = False

    def __init__(self):
        self.frozen_events = []

    def on_instr(self, event):
        self.frozen_events.append(freeze_event(event))
