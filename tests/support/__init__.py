"""Shared test-support helpers (randomized program generation etc.)."""
