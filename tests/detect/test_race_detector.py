"""Tests for the happens-before race detector."""

import pytest

from repro.detect import detect_races
from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region
from repro.vm import RandomScheduler, RoundRobinScheduler

from tests.conftest import FIG5_SOURCE


def record(source, seed=0, switch_prob=0.3, name="race-test"):
    program = compile_source(source, name=name)
    pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=switch_prob),
        RegionSpec())
    return program, pinball


RACY = """
int shared;
int writer(int v) {
    shared = v;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(writer, 1);
    b = spawn(writer, 2);
    join(a); join(b);
    print(shared);
    return 0;
}
"""

LOCKED = """
int shared; int m;
int writer(int v) {
    lock(&m);
    shared = shared + v;
    unlock(&m);
    return 0;
}
int main() {
    int a; int b;
    a = spawn(writer, 1);
    b = spawn(writer, 2);
    join(a); join(b);
    print(shared);
    return 0;
}
"""


class TestDetection:
    def test_unsynchronized_writes_detected(self):
        program, pinball = record(RACY)
        races = detect_races(pinball, program)
        assert races
        assert any(r.kind == "write-write" for r in races)
        shared_addr = program.globals["shared"].addr
        assert any(r.addr == shared_addr for r in races)

    def test_lock_protected_accesses_are_clean(self):
        program, pinball = record(LOCKED)
        races = detect_races(pinball, program)
        shared_addr = program.globals["shared"].addr
        assert not [r for r in races if r.addr == shared_addr], races

    def test_spawn_establishes_order(self):
        # Parent writes before spawn; child reads: ordered, no race.
        source = """
int cfg;
int child(int unused) {
    print(cfg);
    return 0;
}
int main() {
    cfg = 7;
    join(spawn(child, 0));
    return 0;
}
"""
        program, pinball = record(source)
        assert detect_races(pinball, program) == []

    def test_join_establishes_order(self):
        # Child writes; parent reads after join: ordered, no race.
        source = """
int out;
int child(int unused) {
    out = 42;
    return 0;
}
int main() {
    join(spawn(child, 0));
    print(out);
    return 0;
}
"""
        program, pinball = record(source)
        assert detect_races(pinball, program) == []

    def test_read_write_race_detected(self):
        source = """
int flag;
int reader(int unused) {
    print(flag);
    return 0;
}
int main() {
    int t;
    t = spawn(reader, 0);
    flag = 1;
    join(t);
    return 0;
}
"""
        program, pinball = record(source)
        races = detect_races(pinball, program)
        assert races
        kinds = {r.kind for r in races}
        assert kinds & {"read-write", "write-read"}

    def test_fig5_race_found_on_x(self, fig5):
        program, pinball, _seed = fig5
        races = detect_races(pinball, program)
        x_addr = program.globals["x"].addr
        x_races = [r for r in races if r.addr == x_addr]
        assert x_races
        # Both endpoints exist in the trace and cross threads.
        for race in x_races:
            assert race.first_instance[0] != race.second_instance[0]

    def test_reports_deduplicated_by_site(self):
        source = """
int shared;
int writer(int n) {
    int i;
    for (i = 0; i < 20; i = i + 1) { shared = shared + 1; }
    return 0;
}
int main() {
    int a; int b;
    a = spawn(writer, 0);
    b = spawn(writer, 0);
    join(a); join(b);
    return 0;
}
"""
        program, pinball = record(source)
        races = detect_races(pinball, program)
        # 20x20 dynamic conflicts collapse to a handful of static pairs.
        assert 0 < len(races) <= 6
        assert len({r.site_pair() for r in races}) == len(races)


class TestReporting:
    def test_describe_names_the_variable(self):
        program, pinball = record(RACY)
        races = detect_races(pinball, program)
        text = races[0].describe(program)
        assert "shared" in text
        assert "writer" in text

    def test_describe_array_element(self):
        source = """
int table[4];
int writer(int i) {
    table[2] = i;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(writer, 1);
    b = spawn(writer, 2);
    join(a); join(b);
    return 0;
}
"""
        program, pinball = record(source)
        races = detect_races(pinball, program)
        assert races
        assert "table[2]" in races[0].describe(program)

    def test_race_endpoints_are_sliceable(self, fig5):
        """The integration the docstring promises: race endpoints work
        as slicing criteria."""
        from repro.slicing import SlicingSession
        program, pinball, _seed = fig5
        races = detect_races(pinball, program)
        session = SlicingSession(pinball, program)
        race = races[0]
        dslice = session.slice_for(race.second_instance)
        assert race.second_instance in dslice


class TestDeterminism:
    def test_same_pinball_same_races(self):
        program, pinball = record(RACY, seed=5)
        first = detect_races(pinball, program)
        second = detect_races(pinball, program)
        assert [r.site_pair() for r in first] == [
            r.site_pair() for r in second]
