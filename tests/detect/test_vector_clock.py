"""Unit and property tests for vector clocks."""

from hypothesis import given, settings, strategies as st

from repro.detect import VectorClock


def vc(**kwargs):
    return VectorClock({int(k[1:]): v for k, v in kwargs.items()})


class TestBasics:
    def test_empty_defaults_to_zero(self):
        assert VectorClock().get(5) == 0

    def test_tick(self):
        clock = VectorClock()
        assert clock.tick(1) == 1
        assert clock.tick(1) == 2
        assert clock.get(1) == 2

    def test_join_is_pointwise_max(self):
        a = vc(t0=3, t1=1)
        b = vc(t1=5, t2=2)
        a.join(b)
        assert a.get(0) == 3 and a.get(1) == 5 and a.get(2) == 2

    def test_copy_is_independent(self):
        a = vc(t0=1)
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1 and b.get(0) == 2

    def test_set_zero_clears(self):
        a = vc(t0=1)
        a.set(0, 0)
        assert a == VectorClock()


class TestOrdering:
    def test_happens_before(self):
        assert vc(t0=1).happens_before(vc(t0=2))
        assert vc(t0=1).happens_before(vc(t0=1, t1=1))
        assert not vc(t0=2).happens_before(vc(t0=1))
        assert not vc(t0=1).happens_before(vc(t0=1))   # equal: not HB

    def test_concurrent(self):
        assert vc(t0=1).concurrent_with(vc(t1=1))
        assert not vc(t0=1).concurrent_with(vc(t0=2))
        assert not vc(t0=1).concurrent_with(vc(t0=1))


clock_strategy = st.dictionaries(
    st.integers(0, 4), st.integers(1, 10), max_size=4
).map(VectorClock)


class TestProperties:
    @given(clock_strategy, clock_strategy)
    @settings(max_examples=200, deadline=None)
    def test_trichotomy(self, a, b):
        relations = [a.happens_before(b), b.happens_before(a),
                     a.concurrent_with(b), a == b]
        assert sum(relations) == 1

    @given(clock_strategy, clock_strategy)
    @settings(max_examples=100, deadline=None)
    def test_join_upper_bound(self, a, b):
        joined = a.copy()
        joined.join(b)
        assert a == joined or a.happens_before(joined)
        assert b == joined or b.happens_before(joined)

    @given(clock_strategy, clock_strategy, clock_strategy)
    @settings(max_examples=100, deadline=None)
    def test_transitivity(self, a, b, c):
        if a.happens_before(b) and b.happens_before(c):
            assert a.happens_before(c)
