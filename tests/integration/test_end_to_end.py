"""End-to-end workflows: the full DrDebug pipeline on real bug analogs.

These follow the paper's Figure 2 / Figure 4 narrative literally:
capture the buggy region → cyclic replay debugging → dynamic slice →
slice pinball → execution-slice stepping; plus the Maple entry point.
"""

import pytest

from repro.debugger import DrDebugCLI, DrDebugSession
from repro.maple import expose_and_record
from repro.pinplay import RegionSpec, record_region, replay
from repro.slicing import SlicingSession
from repro.vm import RandomScheduler
from repro.workloads import get_bug


@pytest.fixture(scope="module")
def pbzip2_case():
    workload = get_bug("pbzip2")
    program = workload.build(warmup=300)
    pinball, seed = workload.expose(program, seeds=range(48))
    assert pinball is not None
    return workload, program, pinball, seed


class TestFullPipeline:
    def test_capture_replay_slice_step(self, pbzip2_case):
        workload, program, pinball, seed = pbzip2_case

        # 1. The whole-program pinball reproduces the failure.
        machine, result = replay(pinball, program)
        assert result.failure["code"] == workload.failure_code

        # 2. Focused buggy region: skip the warm-up, still catch the bug.
        skip = workload.buggy_region_skip(program, seed)
        region_pb = record_region(
            program,
            RandomScheduler(seed=seed, switch_prob=workload.switch_prob),
            RegionSpec(skip=skip))
        assert region_pb.meta["failure"] is not None
        assert region_pb.total_instructions < pinball.total_instructions

        # 3. Slice the failure; the root cause (main's teardown write to
        #    fifo_valid) must be in the slice, in another thread.
        session = SlicingSession(region_pb, program)
        dslice = session.slice_for(session.failure_criterion())
        slice_threads = dslice.threads()
        failing_tid = region_pb.meta["failure"]["tid"]
        assert failing_tid in slice_threads
        assert 0 in slice_threads, "main's teardown missing from slice"

        # 4. Relog to a slice pinball; replay skips excluded code but
        #    reproduces the failure.
        slice_pb = session.make_slice_pinball(dslice)
        assert (slice_pb.meta["kept_instructions"]
                < region_pb.total_instructions)
        sliced_machine, sliced_result = replay(slice_pb, program,
                                               verify=False)
        assert sliced_result.failure is not None
        assert sliced_result.failure["code"] == workload.failure_code
        assert sliced_machine.skipped_exclusions > 0

    def test_cyclic_debugging_with_cli(self, pbzip2_case):
        workload, program, pinball, _seed = pbzip2_case
        cli = DrDebugCLI(DrDebugSession(pinball, program,
                                        source=workload.source()))
        # Iteration 1: watch the compressor hit the assert.
        cli.execute("break compressor")
        first_stop = cli.execute("run")
        assert "hit breakpoint" in first_stop
        fifo_valid_1 = cli.execute("print fifo_valid")
        # Iteration 2: identical world.
        second_stop = cli.execute("run")
        assert second_stop == first_stop
        assert cli.execute("print fifo_valid") == fifo_valid_1

    def test_slice_cli_workflow(self, pbzip2_case, tmp_path):
        workload, program, pinball, _seed = pbzip2_case
        cli = DrDebugCLI(DrDebugSession(pinball, program,
                                        source=workload.source()))
        summary = cli.execute("slice-failure")
        assert "instruction instances" in summary
        path = str(tmp_path / "bug.slice.json")
        cli.execute("slice-save %s" % path)
        assert "kept" in cli.execute("slice-pinball")
        cli.execute("slice-replay")
        stepped = 0
        for _ in range(200):
            out = cli.execute("slice-step")
            if "finished" in out:
                break
            stepped += 1
        assert stepped > 0

    def test_pinball_files_are_portable(self, pbzip2_case, tmp_path):
        """A pinball saved to disk replays in a fresh 'session' (paper:
        pinballs can move between developers)."""
        from repro.pinplay import Pinball
        workload, program, pinball, _seed = pbzip2_case
        path = str(tmp_path / "bug.pinball")
        size = pinball.save(path)
        assert size > 0
        # Fresh compile of the same source stands in for another machine.
        fresh_program = workload.build(warmup=300)
        loaded = Pinball.load(path)
        machine, result = replay(loaded, fresh_program)
        assert result.failure["code"] == workload.failure_code


class TestMapleIntegration:
    def test_maple_pinball_feeds_whole_pipeline(self):
        """Maple exposes a bug, records it; DrDebug slices it."""
        from repro.lang import compile_source
        source = """
int x;
int bump(int unused) {
    x = x + 1;
    return 0;
}
int main() {
    int a; int b;
    a = spawn(bump, 0);
    b = spawn(bump, 0);
    join(a);
    join(b);
    assert(x == 2, 11);
    return 0;
}
"""
        program = compile_source(source, name="maple-e2e")
        result = expose_and_record(program, profile_seeds=range(3),
                                   max_active_runs=40)
        assert result.exposed
        session = SlicingSession(result.pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        # The slice tells the lost-update story: the final (wrong) value of
        # x flows from exactly one bump thread — the other's increment was
        # overwritten and is correctly absent — plus main's assert.
        threads = dslice.threads()
        assert 0 in threads
        assert len({1, 2} & threads) == 1


class TestAllBugsThroughPipeline:
    @pytest.mark.parametrize("name", ["pbzip2", "aget", "mozilla"])
    def test_slice_pinball_reproduces_failure(self, name):
        workload = get_bug(name)
        program = workload.build(warmup=120)
        pinball, _seed = workload.expose(program, seeds=range(48))
        assert pinball is not None
        session = SlicingSession(pinball, program)
        dslice = session.slice_for(session.failure_criterion())
        slice_pb = session.make_slice_pinball(dslice)
        machine, result = replay(slice_pb, program, verify=False)
        assert result.failure is not None
        assert result.failure["code"] == workload.failure_code
        # Execution slicing actually skipped work.
        assert machine.skipped_exclusions > 0
        assert (slice_pb.meta["kept_instructions"]
                < slice_pb.meta["region_instructions"])
