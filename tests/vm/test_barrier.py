"""Tests for the barrier syscall and its interactions."""

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, replay
from repro.vm import DeadlockError, Machine, RandomScheduler

from tests.conftest import run_minic

PHASED = """
int bar;
int phase1[4];
int saw_all[4];

int worker(int slot) {
    phase1[slot] = slot + 10;
    barrier(&bar, 3);
    // After the barrier, everyone must see all phase-1 writes.
    if (phase1[0] == 10 && phase1[1] == 11 && phase1[2] == 12) {
        saw_all[slot] = 1;
    }
    return 0;
}

int main() {
    int a; int b;
    a = spawn(worker, 1);
    b = spawn(worker, 2);
    worker(0);
    join(a); join(b);
    print(saw_all[0] + saw_all[1] + saw_all[2]);
    return 0;
}
"""


class TestBarrierSemantics:
    def test_all_threads_see_phase_one(self):
        for seed in range(8):
            machine = run_minic(
                PHASED,
                scheduler=RandomScheduler(seed=seed, switch_prob=0.3))
            assert machine.output == [3], (seed, machine.output)

    def test_reusable_across_rounds(self):
        source = """
int bar; int rounds;
int worker(int unused) {
    int i;
    for (i = 0; i < 5; i = i + 1) {
        barrier(&bar, 2);
    }
    return 0;
}
int main() {
    int t;
    t = spawn(worker, 0);
    worker(0);
    join(t);
    print(1);
    return 0;
}
"""
        for seed in range(6):
            machine = run_minic(
                source,
                scheduler=RandomScheduler(seed=seed, switch_prob=0.3))
            assert machine.output == [1]

    def test_single_thread_barrier_is_noop(self):
        source = """
int bar;
int main() {
    barrier(&bar, 1);
    print(7);
    return 0;
}
"""
        assert run_minic(source).output == [7]

    def test_insufficient_threads_deadlocks(self):
        source = """
int bar;
int main() {
    barrier(&bar, 2);
    return 0;
}
"""
        with pytest.raises(DeadlockError):
            run_minic(source)

    def test_invalid_count_faults(self):
        from repro.vm import VMError
        source = """
int bar;
int main() {
    barrier(&bar, 0);
    return 0;
}
"""
        with pytest.raises(VMError):
            run_minic(source)


class TestBarrierReplay:
    def test_barrier_program_replays_exactly(self):
        program = compile_source(PHASED, name="barrier-replay")
        pinball = record_region(
            program, RandomScheduler(seed=3, switch_prob=0.3), RegionSpec())
        machine, _result = replay(pinball, program)
        assert machine.output == pinball.meta["output"]

    def test_snapshot_mid_barrier_round(self):
        """A region recorded while threads sit inside a barrier must
        restore and replay the release correctly."""
        program = compile_source(PHASED, name="barrier-snap")
        pinball = record_region(
            program, RandomScheduler(seed=3, switch_prob=0.3),
            RegionSpec(skip=30))   # likely mid-round for some thread
        machine, _result = replay(pinball, program)
        assert machine.output == pinball.meta["output"]


class TestBarrierHappensBefore:
    def test_barrier_orders_conflicting_accesses(self):
        """Writes before the barrier and reads after it don't race."""
        from repro.detect import detect_races
        source = """
int bar; int data;
int writer(int unused) {
    data = 42;
    barrier(&bar, 2);
    return 0;
}
int main() {
    int t;
    t = spawn(writer, 0);
    barrier(&bar, 2);
    print(data);
    return 0;
}
"""
        program = compile_source(source, name="barrier-hb")
        pinball = record_region(
            program, RandomScheduler(seed=1, switch_prob=0.3), RegionSpec())
        races = detect_races(pinball, program)
        data_addr = program.globals["data"].addr
        assert not [r for r in races if r.addr == data_addr], races

    def test_without_barrier_same_accesses_race(self):
        from repro.detect import detect_races
        source = """
int data;
int writer(int unused) {
    data = 42;
    return 0;
}
int main() {
    int t;
    t = spawn(writer, 0);
    print(data);
    join(t);
    return 0;
}
"""
        program = compile_source(source, name="no-barrier")
        pinball = record_region(
            program, RandomScheduler(seed=1, switch_prob=0.3), RegionSpec())
        races = detect_races(pinball, program)
        data_addr = program.globals["data"].addr
        assert [r for r in races if r.addr == data_addr]
