"""Unit tests for the schedulers."""

import pytest

from repro.vm.errors import ReplayDivergence
from repro.vm.scheduler import (
    PriorityScheduler,
    RandomScheduler,
    RecordedScheduler,
    RoundRobinScheduler,
    ScheduleRecorder,
)


def drive(scheduler, runnable_fn, steps):
    """Run pick/commit cycles; returns the tid sequence."""
    picked = []
    last = None
    for step in range(steps):
        runnable = runnable_fn(step)
        tid = scheduler.pick(runnable, last)
        scheduler.commit(tid)
        picked.append(tid)
        last = tid
    return picked


class TestRoundRobin:
    def test_quantum_rotation(self):
        sched = RoundRobinScheduler(quantum=3)
        picked = drive(sched, lambda s: [0, 1], 9)
        assert picked == [0, 0, 0, 1, 1, 1, 0, 0, 0]

    def test_skips_non_runnable(self):
        sched = RoundRobinScheduler(quantum=2)
        picked = drive(sched, lambda s: [1] if s < 4 else [0, 1], 6)
        assert picked[:4] == [1, 1, 1, 1]

    def test_wraps_around(self):
        sched = RoundRobinScheduler(quantum=1)
        picked = drive(sched, lambda s: [0, 1, 2], 6)
        assert picked == [0, 1, 2, 0, 1, 2]

    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)

    def test_discarded_pick_not_consumed(self):
        sched = RoundRobinScheduler(quantum=2)
        first = sched.pick([0, 1], None)
        # pick again without commit: same answer (pure until commit).
        assert sched.pick([0, 1], None) == first


class TestRandom:
    def test_deterministic_per_seed(self):
        a = drive(RandomScheduler(seed=3, switch_prob=0.5),
                  lambda s: [0, 1, 2], 50)
        b = drive(RandomScheduler(seed=3, switch_prob=0.5),
                  lambda s: [0, 1, 2], 50)
        assert a == b

    def test_different_seeds_differ(self):
        a = drive(RandomScheduler(seed=1, switch_prob=0.5),
                  lambda s: [0, 1, 2], 50)
        b = drive(RandomScheduler(seed=2, switch_prob=0.5),
                  lambda s: [0, 1, 2], 50)
        assert a != b

    def test_only_picks_runnable(self):
        picked = drive(RandomScheduler(seed=7, switch_prob=1.0),
                       lambda s: [2, 5], 30)
        assert set(picked) <= {2, 5}

    def test_zero_switch_prob_sticks(self):
        picked = drive(RandomScheduler(seed=7, switch_prob=0.0),
                       lambda s: [0, 1], 10)
        assert len(set(picked)) == 1


class TestRecorded:
    def test_follows_schedule(self):
        sched = RecordedScheduler([(0, 2), (1, 3), (0, 1)])
        picked = drive(sched, lambda s: [0, 1], 6)
        assert picked == [0, 0, 1, 1, 1, 0]
        assert sched.exhausted

    def test_divergence_on_not_runnable(self):
        sched = RecordedScheduler([(5, 1)])
        with pytest.raises(ReplayDivergence):
            sched.pick([0, 1], None)

    def test_divergence_when_exhausted(self):
        sched = RecordedScheduler([(0, 1)])
        sched.commit(sched.pick([0], None))
        with pytest.raises(ReplayDivergence):
            sched.pick([0], 0)

    def test_pick_without_commit_repeats(self):
        sched = RecordedScheduler([(0, 1), (1, 1)])
        assert sched.pick([0, 1], None) == 0
        assert sched.pick([0, 1], None) == 0    # not yet committed
        sched.commit(0)
        assert sched.pick([0, 1], 0) == 1

    def test_commit_mismatch_raises(self):
        sched = RecordedScheduler([(0, 1)])
        with pytest.raises(ReplayDivergence):
            sched.commit(1)


class TestPriority:
    def test_highest_priority_wins(self):
        sched = PriorityScheduler({0: 1, 1: 5, 2: 3})
        assert drive(sched, lambda s: [0, 1, 2], 3) == [1, 1, 1]

    def test_tie_breaks_by_lower_tid(self):
        sched = PriorityScheduler({0: 2, 1: 2})
        assert sched.pick([0, 1], None) == 0

    def test_dynamic_priority_update(self):
        sched = PriorityScheduler({0: 5, 1: 1})
        assert sched.pick([0, 1], None) == 0
        sched.set_priority(1, 10)
        assert sched.pick([0, 1], 0) == 1

    def test_before_pick_callback(self):
        seen = []
        sched = PriorityScheduler(before_pick=lambda r: seen.append(list(r)))
        sched.pick([3, 4], None)
        assert seen == [[3, 4]]


class TestScheduleRecorder:
    def test_rle_compression(self):
        rec = ScheduleRecorder()
        for tid in [0, 0, 0, 1, 1, 0]:
            rec.record(tid)
        assert rec.runs == [(0, 3), (1, 2), (0, 1)]
        assert rec.total() == 6

    def test_empty(self):
        assert ScheduleRecorder().total() == 0

    def test_roundtrip_through_recorded_scheduler(self):
        rec = ScheduleRecorder()
        original = [0, 1, 1, 2, 0, 0, 2]
        for tid in original:
            rec.record(tid)
        sched = RecordedScheduler(rec.runs)
        replayed = drive(sched, lambda s: [0, 1, 2], len(original))
        assert replayed == original
