"""Differential tests: the predecoded engine is observationally identical
to the legacy interpreter.

A seeded generator synthesizes randomized multi-threaded programs (locks,
races, loops, branches, switches, calls, nondeterministic syscalls) and
every program is executed under both engines with the same scheduler seed.
The engines must agree on:

* the full :class:`InstrEvent` stream — every retired instruction with its
  complete def/use information (register and memory reads/writes with
  values), in the same global order;
* the scratch-event fast path — a non-retaining tool (the recycled-event
  protocol) sees the same stream as a retaining tool;
* the final :class:`MachineSnapshot` dict, program output and exit code;
* recorded pinballs — schedule, syscall log, access-order edges and the
  final state hash — including *cross* replay (a pinball recorded under
  one engine replays verified under the other);
* slice-pinball replay with exclusion skips (relogged pinballs teleport
  over excluded runs and inject side effects identically);
* the columnar trace store — record-for-record equal to the seed
  record-per-row store, and slices computed over either layout agree.
"""

import random

import pytest

from repro.lang import compile_source
from repro.pinplay import RegionSpec, record_region, relog, replay
from repro.pinplay.pinball import state_hash
from repro.slicing import SliceOptions, SlicingSession
from repro.vm import RandomScheduler
from repro.vm.hooks import Tool
from repro.vm.machine import Machine

STEP_CAP = 60_000

#: 24 randomized programs for the event-stream comparison (the cheap,
#: highest-coverage check) ...
STREAM_SEEDS = list(range(24))
#: ... and a subset for the heavier record/replay/slice pipelines.
PIPELINE_SEEDS = list(range(10))


# -- randomized program synthesis ---------------------------------------------

_BINOPS = ("+", "-", "*", "&", "|", "^")


def _worker(rng: random.Random, index: int) -> str:
    """One worker function: a lock-protected update loop with extras."""
    op1, op2, op3 = (rng.choice(_BINOPS) for _ in range(3))
    c1, c2, c3 = (rng.randint(1, 9) for _ in range(3))
    bound = rng.randint(3, 7)
    ga, gb = rng.sample(("g0", "g1", "g2", "g3"), 2)
    lines = [
        "int worker%d(int n) {" % index,
        "    int i; int t;",
        "    t = %d;" % rng.randint(0, 5),
        "    for (i = 0; i < n + %d; i = i + 1) {" % (bound - 3),
        "        lock(&m);",
        "        %s = %s %s %d;" % (ga, ga, op1, c1),
        "        %s = %s %s (i %s %d);" % (gb, gb, op2, op3, c2),
        "        unlock(&m);",
    ]
    # Racy unlocked read: generates cross-thread access-order edges.
    lines.append("        t = t + %s;" % rng.choice((ga, gb)))
    if rng.random() < 0.5:
        lines += [
            "        if (t > %d) { t = t - %d; } else { t = t + 1; }"
            % (c3 * 10, c3),
        ]
    if rng.random() < 0.4:
        lines += [
            "        switch (i % 4) {",
            "            case 0: t = t + %d; break;" % c1,
            "            case 1: t = t ^ %d; break;" % c2,
            "            case 2: t = helper(t); break;",
            "            default: t = t - 1; break;",
            "        }",
        ]
    if rng.random() < 0.4:
        lines.append("        t = t + rand(%d);" % rng.randint(2, 6))
    if rng.random() < 0.3:
        lines.append("        yield();")
    lines += [
        "    }",
        "    return t;",
        "}",
    ]
    return "\n".join(lines)


def generate_source(seed: int) -> str:
    """A deterministic, seed-randomized multi-threaded program."""
    rng = random.Random(seed)
    nworkers = rng.randint(1, 3)
    parts = [
        "int g0; int g1; int g2; int g3; int m;",
        "int helper(int v) {",
        "    if (v %% 2) { return v + %d; }" % rng.randint(1, 5),
        "    return v - %d;" % rng.randint(1, 5),
        "}",
    ]
    for index in range(nworkers):
        parts.append(_worker(rng, index))
    main = [
        "int main() {",
        "    int x; int r;",
        "    " + " ".join("int t%d;" % i for i in range(nworkers)),
        "    x = input();",
        "    g0 = x + %d;" % rng.randint(0, 9),
        "    g1 = %d;" % rng.randint(1, 9),
    ]
    if rng.random() < 0.5:
        main.append("    g2 = time() % 97;")
    for index in range(nworkers):
        main.append("    t%d = spawn(worker%d, %d);"
                    % (index, index, rng.randint(2, 5)))
    main.append("    r = helper(x);")
    for index in range(nworkers):
        main.append("    join(t%d);" % index)
    main += [
        "    print(g0); print(g1); print(g2); print(r);",
        "    return 0;",
        "}",
    ]
    parts.append("\n".join(main))
    return "\n".join(parts)


def build_program(seed: int):
    return compile_source(generate_source(seed), name="diff-%d" % seed)


# -- observation tools --------------------------------------------------------

def _freeze(event) -> tuple:
    return (event.seq, event.tid, event.tindex, event.addr,
            tuple(event.reg_reads), tuple(event.reg_writes),
            tuple(event.mem_reads), tuple(event.mem_writes),
            event.frame_id)


class RetainingLog(Tool):
    """Default protocol: events are immutable and may be stored as-is."""

    wants_instr_events = True      # retains_instr_events stays True

    def __init__(self):
        self.events = []
        self.syscalls = []
        self.steps = []

    def on_instr(self, event):
        self.events.append(event)   # retained: forces fresh events

    def on_syscall(self, event):
        self.syscalls.append((event.seq, event.tid, event.name,
                              tuple(event.args), event.result))

    def on_step(self, tid):
        self.steps.append(tid)

    def frozen(self):
        return [_freeze(event) for event in self.events]


class EagerLog(Tool):
    """Non-retaining protocol: triggers the recycled scratch-event path."""

    wants_instr_events = True
    retains_instr_events = False

    def __init__(self):
        self.frozen_events = []

    def on_instr(self, event):
        self.frozen_events.append(_freeze(event))


def run_machine(program, seed: int, engine: str, tool=None):
    machine = Machine(program,
                      scheduler=RandomScheduler(seed=seed, switch_prob=0.3),
                      inputs=[seed % 11], rand_seed=seed, engine=engine)
    if tool is not None:
        machine.add_tool(tool)
    machine.run(max_steps=STEP_CAP)
    assert machine.finished, "randomized program %d did not terminate" % seed
    return machine


# -- the differential tests ---------------------------------------------------

@pytest.mark.parametrize("seed", STREAM_SEEDS)
def test_event_streams_and_final_state_match(seed):
    program = build_program(seed)

    legacy_log = RetainingLog()
    legacy = run_machine(program, seed, "legacy", legacy_log)
    pre_log = RetainingLog()
    pre = run_machine(program, seed, "predecoded", pre_log)

    assert legacy_log.steps == pre_log.steps
    assert legacy_log.syscalls == pre_log.syscalls
    assert legacy_log.frozen() == pre_log.frozen()
    assert list(legacy.output) == list(pre.output)
    assert legacy.exit_code == pre.exit_code
    assert legacy.snapshot().to_dict() == pre.snapshot().to_dict()


@pytest.mark.parametrize("seed", STREAM_SEEDS[::3])
def test_scratch_event_path_sees_identical_stream(seed):
    """The recycled-event fast path must be observationally identical to
    the fresh-tuple path (same fields, same def/use contents and order)."""
    program = build_program(seed)
    retaining = RetainingLog()
    run_machine(program, seed, "predecoded", retaining)
    eager = EagerLog()
    run_machine(program, seed, "predecoded", eager)
    assert retaining.frozen() == eager.frozen_events


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_recorded_pinballs_match_and_cross_replay(seed):
    program = build_program(seed)
    pinballs = {}
    for engine in ("legacy", "predecoded"):
        pinballs[engine] = record_region(
            program, RandomScheduler(seed=seed, switch_prob=0.3),
            RegionSpec(), inputs=[seed % 11], rand_seed=seed, engine=engine)
    legacy_pb, pre_pb = pinballs["legacy"], pinballs["predecoded"]

    assert legacy_pb.schedule == pre_pb.schedule
    assert legacy_pb.syscalls == pre_pb.syscalls
    assert legacy_pb.mem_order == pre_pb.mem_order
    assert legacy_pb.snapshot == pre_pb.snapshot
    assert (legacy_pb.meta["final_state_hash"]
            == pre_pb.meta["final_state_hash"])
    assert legacy_pb.meta["output"] == pre_pb.meta["output"]
    assert (legacy_pb.meta["thread_instr_counts"]
            == pre_pb.meta["thread_instr_counts"])

    # Cross-replay: each engine's pinball replays *verified* (final state
    # hash + output) under the other engine.
    replay(legacy_pb, program, engine="predecoded", verify=True)
    replay(pre_pb, program, engine="legacy", verify=True)


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_columnar_store_matches_row_store_and_slices_agree(seed):
    program = build_program(seed)
    pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=0.3), RegionSpec(),
        inputs=[seed % 11], rand_seed=seed)

    columnar = SlicingSession(pinball, program, engine="predecoded",
                              options=SliceOptions(columnar=True))
    rowwise = SlicingSession(pinball, program, engine="legacy",
                             options=SliceOptions(columnar=False))

    col_store, row_store = columnar.collector.store, rowwise.collector.store
    assert col_store.threads() == row_store.threads()
    for tid in row_store.threads():
        assert col_store.thread_length(tid) == row_store.thread_length(tid)
        for tindex in range(row_store.thread_length(tid)):
            col, row = col_store.get((tid, tindex)), row_store.get(
                (tid, tindex))
            for field in ("tid", "tindex", "addr", "line", "func", "rdefs",
                          "ruses", "mdefs", "muses", "cd", "gpos", "values"):
                assert getattr(col, field) == getattr(row, field), (
                    "field %s differs at (%d, %d)" % (field, tid, tindex))
            assert sorted(col.def_locations()) == sorted(row.def_locations())
            assert sorted(col.use_locations()) == sorted(row.use_locations())

    for criterion in columnar.last_reads(3):
        col_slice = columnar.slice_for(criterion)
        row_slice = rowwise.slice_for(criterion)
        assert set(col_slice.nodes) == set(row_slice.nodes)
        assert sorted(col_slice.edges) == sorted(row_slice.edges)


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_slice_pinball_exclusion_replay_matches(seed):
    """Relogged slice pinballs (exclusion skips + side-effect injection)
    replay to the same machine state under both engines."""
    program = build_program(seed)
    pinball = record_region(
        program, RandomScheduler(seed=seed, switch_prob=0.3), RegionSpec(),
        inputs=[seed % 11], rand_seed=seed)
    session = SlicingSession(pinball, program, engine="predecoded")
    criterion = session.last_reads(1)[0]
    dslice = session.slice_for(criterion)
    keep = {}
    for tid, tindex in dslice.nodes:
        keep.setdefault(tid, set()).add(tindex)
    slice_pb = relog(pinball, program, keep)

    legacy_m, _ = replay(slice_pb, program, engine="legacy", verify=False)
    pre_m, _ = replay(slice_pb, program, engine="predecoded", verify=False)
    assert legacy_m.skipped_exclusions == pre_m.skipped_exclusions
    assert list(legacy_m.output) == list(pre_m.output)
    assert state_hash(legacy_m) == state_hash(pre_m)
