"""Differential tests: the predecoded engine is observationally identical
to the legacy interpreter.

The shared seeded generator (:mod:`tests.support.progen`) synthesizes
randomized multi-threaded programs (locks, races, loops, branches,
switches, calls, nondeterministic syscalls) and every program is executed
under both engines with the same scheduler seed.  The engines must agree
on:

* the full :class:`InstrEvent` stream — every retired instruction with its
  complete def/use information (register and memory reads/writes with
  values), in the same global order;
* the scratch-event fast path — a non-retaining tool (the recycled-event
  protocol) sees the same stream as a retaining tool;
* the final :class:`MachineSnapshot` dict, program output and exit code;
* recorded pinballs — schedule, syscall log, access-order edges and the
  final state hash — including *cross* replay (a pinball recorded under
  one engine replays verified under the other);
* slice-pinball replay with exclusion skips (relogged pinballs teleport
  over excluded runs and inject side effects identically);
* the columnar trace store — record-for-record equal to the seed
  record-per-row store, and slices computed over either layout agree.
"""

import pytest

from repro.pinplay import relog, replay
from repro.pinplay.pinball import state_hash
from repro.slicing import SliceOptions, SlicingSession

from tests.support.progen import (EagerLog, RetainingLog, build_program,
                                  record_pinball, run_machine)

#: 24 randomized programs for the event-stream comparison (the cheap,
#: highest-coverage check) ...
STREAM_SEEDS = list(range(24))
#: ... and a subset for the heavier record/replay/slice pipelines.
PIPELINE_SEEDS = list(range(10))


@pytest.mark.parametrize("seed", STREAM_SEEDS)
def test_event_streams_and_final_state_match(seed):
    program = build_program(seed)

    legacy_log = RetainingLog()
    legacy = run_machine(program, seed, "legacy", legacy_log)
    pre_log = RetainingLog()
    pre = run_machine(program, seed, "predecoded", pre_log)

    assert legacy_log.steps == pre_log.steps
    assert legacy_log.syscalls == pre_log.syscalls
    assert legacy_log.frozen() == pre_log.frozen()
    assert list(legacy.output) == list(pre.output)
    assert legacy.exit_code == pre.exit_code
    assert legacy.snapshot().to_dict() == pre.snapshot().to_dict()


@pytest.mark.parametrize("seed", STREAM_SEEDS[::3])
def test_scratch_event_path_sees_identical_stream(seed):
    """The recycled-event fast path must be observationally identical to
    the fresh-tuple path (same fields, same def/use contents and order)."""
    program = build_program(seed)
    retaining = RetainingLog()
    run_machine(program, seed, "predecoded", retaining)
    eager = EagerLog()
    run_machine(program, seed, "predecoded", eager)
    assert retaining.frozen() == eager.frozen_events


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_recorded_pinballs_match_and_cross_replay(seed):
    program = build_program(seed)
    pinballs = {
        engine: record_pinball(program, seed, engine=engine)
        for engine in ("legacy", "predecoded")
    }
    legacy_pb, pre_pb = pinballs["legacy"], pinballs["predecoded"]

    assert legacy_pb.schedule == pre_pb.schedule
    assert legacy_pb.syscalls == pre_pb.syscalls
    assert legacy_pb.mem_order == pre_pb.mem_order
    assert legacy_pb.snapshot == pre_pb.snapshot
    assert (legacy_pb.meta["final_state_hash"]
            == pre_pb.meta["final_state_hash"])
    assert legacy_pb.meta["output"] == pre_pb.meta["output"]
    assert (legacy_pb.meta["thread_instr_counts"]
            == pre_pb.meta["thread_instr_counts"])

    # Cross-replay: each engine's pinball replays *verified* (final state
    # hash + output) under the other engine.
    replay(legacy_pb, program, engine="predecoded", verify=True)
    replay(pre_pb, program, engine="legacy", verify=True)


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_columnar_store_matches_row_store_and_slices_agree(seed):
    program = build_program(seed)
    pinball = record_pinball(program, seed)

    columnar = SlicingSession(pinball, program, engine="predecoded",
                              options=SliceOptions(columnar=True))
    rowwise = SlicingSession(pinball, program, engine="legacy",
                             options=SliceOptions(columnar=False))

    col_store, row_store = columnar.collector.store, rowwise.collector.store
    assert col_store.threads() == row_store.threads()
    for tid in row_store.threads():
        assert col_store.thread_length(tid) == row_store.thread_length(tid)
        for tindex in range(row_store.thread_length(tid)):
            col, row = col_store.get((tid, tindex)), row_store.get(
                (tid, tindex))
            for field in ("tid", "tindex", "addr", "line", "func", "rdefs",
                          "ruses", "mdefs", "muses", "cd", "gpos", "values"):
                assert getattr(col, field) == getattr(row, field), (
                    "field %s differs at (%d, %d)" % (field, tid, tindex))
            assert sorted(col.def_locations()) == sorted(row.def_locations())
            assert sorted(col.use_locations()) == sorted(row.use_locations())

    for criterion in columnar.last_reads(3):
        col_slice = columnar.slice_for(criterion)
        row_slice = rowwise.slice_for(criterion)
        assert set(col_slice.nodes) == set(row_slice.nodes)
        assert sorted(col_slice.edges) == sorted(row_slice.edges)


@pytest.mark.parametrize("seed", PIPELINE_SEEDS)
def test_slice_pinball_exclusion_replay_matches(seed):
    """Relogged slice pinballs (exclusion skips + side-effect injection)
    replay to the same machine state under both engines."""
    program = build_program(seed)
    pinball = record_pinball(program, seed)
    session = SlicingSession(pinball, program, engine="predecoded")
    criterion = session.last_reads(1)[0]
    dslice = session.slice_for(criterion)
    keep = {}
    for tid, tindex in dslice.nodes:
        keep.setdefault(tid, set()).add(tindex)
    slice_pb = relog(pinball, program, keep)

    legacy_m, _ = replay(slice_pb, program, engine="legacy", verify=False)
    pre_m, _ = replay(slice_pb, program, engine="predecoded", verify=False)
    assert legacy_m.skipped_exclusions == pre_m.skipped_exclusions
    assert list(legacy_m.output) == list(pre_m.output)
    assert state_hash(legacy_m) == state_hash(pre_m)
