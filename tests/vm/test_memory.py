"""Unit tests for the sparse memory and heap allocator."""

import pytest

from repro.vm.errors import HeapError, VMError
from repro.vm.memory import ADDRESS_SPACE_TOP, HEAP_POISON, Memory


@pytest.fixture
def mem():
    return Memory(heap_base=100)


class TestWords:
    def test_default_zero(self, mem):
        assert mem.read(50) == 0

    def test_write_read(self, mem):
        mem.write(50, 7)
        assert mem.read(50) == 7

    def test_write_zero_reclaims_storage(self, mem):
        mem.write(50, 7)
        mem.write(50, 0)
        assert mem.read(50) == 0
        assert len(mem) == 0

    def test_float_values(self, mem):
        mem.write(50, 1.25)
        assert mem.read(50) == 1.25

    def test_float_zero_kept_distinct(self, mem):
        mem.write(50, 0.0)
        assert isinstance(mem.read(50), float)

    def test_null_access_rejected(self, mem):
        with pytest.raises(VMError):
            mem.read(0)
        with pytest.raises(VMError):
            mem.write(0, 1)

    def test_negative_address_rejected(self, mem):
        with pytest.raises(VMError):
            mem.read(-5)

    def test_out_of_range_rejected(self, mem):
        with pytest.raises(VMError):
            mem.write(ADDRESS_SPACE_TOP, 1)


class TestHeap:
    def test_malloc_disjoint_blocks(self, mem):
        a = mem.malloc(4)
        b = mem.malloc(4)
        assert a >= 100
        assert abs(a - b) >= 4

    def test_malloc_zero_size_allocates_one_word(self, mem):
        a = mem.malloc(0)
        b = mem.malloc(1)
        assert a != b

    def test_free_and_reuse(self, mem):
        a = mem.malloc(8)
        mem.free(a)
        b = mem.malloc(8)
        assert b == a

    def test_free_different_size_not_reused(self, mem):
        a = mem.malloc(8)
        mem.free(a)
        b = mem.malloc(4)
        assert b != a

    def test_double_free_rejected(self, mem):
        a = mem.malloc(4)
        mem.free(a)
        with pytest.raises(HeapError):
            mem.free(a)

    def test_free_unallocated_rejected(self, mem):
        with pytest.raises(HeapError):
            mem.free(12345)

    def test_heap_error_is_vmerror(self, mem):
        with pytest.raises(VMError):
            mem.free(12345)


class TestPoisonMode:
    def test_free_without_poison_leaves_words(self, mem):
        a = mem.malloc(2)
        mem.write(a, 7)
        assert mem.free(a) is None
        assert mem.read(a) == 7

    def test_free_poisons_whole_block(self):
        mem = Memory(heap_base=100, poison_freed=True)
        a = mem.malloc(3)
        mem.write(a, 1)
        writes = mem.free(a)
        assert writes == [(a, HEAP_POISON), (a + 1, HEAP_POISON),
                          (a + 2, HEAP_POISON)]
        for offset in range(3):
            assert mem.read(a + offset) == HEAP_POISON

    def test_poisoned_block_still_reused(self):
        mem = Memory(heap_base=100, poison_freed=True)
        a = mem.malloc(4)
        mem.free(a)
        assert mem.malloc(4) == a

    def test_poison_flag_rides_snapshot(self):
        mem = Memory(heap_base=100, poison_freed=True)
        a = mem.malloc(2)
        mem.free(a)
        restored = Memory.from_snapshot(mem.snapshot())
        assert restored.poison_freed
        assert restored == mem
        b = restored.malloc(1)
        assert restored.free(b) is not None

    def test_plain_snapshot_has_no_poison_key(self, mem):
        assert "poison" not in mem.snapshot()
        restored = Memory.from_snapshot(mem.snapshot())
        assert not restored.poison_freed


class TestSnapshot:
    def test_roundtrip(self, mem):
        mem.write(50, 7)
        mem.write(60, 1.5)
        a = mem.malloc(4)
        mem.free(a)
        restored = Memory.from_snapshot(mem.snapshot())
        assert restored == mem
        assert restored.read(50) == 7
        # Allocator state also restored: next malloc(4) reuses the block.
        assert restored.malloc(4) == a

    def test_snapshot_is_json_safe(self, mem):
        import json
        mem.write(50, 7)
        mem.malloc(4)
        payload = json.loads(json.dumps(mem.snapshot()))
        restored = Memory.from_snapshot(payload)
        assert restored == mem

    def test_snapshot_independent_of_future_writes(self, mem):
        mem.write(50, 7)
        snap = mem.snapshot()
        mem.write(50, 8)
        assert Memory.from_snapshot(snap).read(50) == 7
