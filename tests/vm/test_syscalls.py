"""Unit tests for syscall behaviours not covered by the semantics tests."""

import pytest

from repro.vm import Machine, VMError
from repro.vm.syscalls import NONDET_SYSCALLS

from tests.conftest import run_minic


class TestNondeterminismContract:
    def test_nondet_set_is_exactly_three(self):
        # The replay design depends on this: anything else added here must
        # also be recorded by the logger and injected by the replayer.
        assert set(NONDET_SYSCALLS) == {"input", "rand", "time"}

    def test_injector_overrides_nondet_results(self):
        from repro.lang import compile_source
        source = "int main() { print(input()); print(rand(10)); return 0; }"
        program = compile_source(source)
        machine = Machine(program, inputs=[5],
                          syscall_injector=lambda name, tid: 123)
        machine.run()
        assert machine.output == [123, 123]

    def test_injector_not_consulted_for_deterministic_syscalls(self):
        from repro.lang import compile_source
        calls = []
        def injector(name, tid):
            calls.append(name)
            return None
        source = "int main() { print(7); return 0; }"
        machine = Machine(compile_source(source), syscall_injector=injector)
        machine.run()
        assert calls == []   # print is deterministic

    def test_injector_none_falls_back_to_live(self):
        from repro.lang import compile_source
        source = "int main() { print(input()); return 0; }"
        machine = Machine(compile_source(source), inputs=[9],
                          syscall_injector=lambda name, tid: None)
        machine.run()
        assert machine.output == [9]


class TestSleep:
    def test_sleep_delays_relative_progress(self):
        source = """
int order[2]; int pos;
int fast(int unused) {
    order[pos] = 1;
    pos = pos + 1;
    return 0;
}
int main() {
    int t;
    t = spawn(fast, 0);
    sleep(200);
    order[pos] = 2;
    pos = pos + 1;
    join(t);
    print(order[0]); print(order[1]);
    return 0;
}
"""
        assert run_minic(source).output == [1, 2]

    def test_sleep_zero_is_noop(self):
        source = "int main() { sleep(0); print(1); return 0; }"
        assert run_minic(source).output == [1]


class TestExitAndAssert:
    def test_exit_code_propagates(self):
        machine = run_minic("int main() { exit(9); return 0; }")
        assert machine.exit_code == 9

    def test_failure_records_location(self):
        source = """
int main() {
    assert(0, 55);
    return 0;
}
"""
        machine = run_minic(source)
        failure = machine.failure
        assert failure["code"] == 55
        assert failure["tid"] == 0
        # pc points at the sys assert instruction.
        assert machine.program.instructions[failure["pc"]].subop == "assert"

    def test_first_failure_wins(self):
        source = """
int main() {
    assert(0, 1);
    assert(0, 2);
    return 0;
}
"""
        machine = run_minic(source)
        assert machine.failure["code"] == 1


class TestUnknownSyscall:
    def test_unknown_syscall_faults(self):
        from repro.isa import assemble
        program = assemble("func main\n  sys bogus\n  halt\n")
        with pytest.raises(VMError):
            Machine(program).run()
