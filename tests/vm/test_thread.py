"""Unit tests for the per-thread context."""

import json

from repro.vm.thread import EXIT_SENTINEL, Frame, ThreadContext, ThreadStatus


class TestConstruction:
    def test_initial_registers(self):
        thread = ThreadContext(3, entry_pc=10, stack_base=1000)
        assert thread.pc == 10
        assert thread.regs["sp"] == 1000
        assert thread.regs["fp"] == 1000
        assert thread.regs["r0"] == 0
        assert thread.status == ThreadStatus.RUNNABLE
        assert thread.instr_count == 0

    def test_stack_limit_below_base(self):
        thread = ThreadContext(0, 0, stack_base=1 << 20)
        assert thread.stack_limit < thread.stack_base


class TestFrames:
    def test_push_pop(self):
        thread = ThreadContext(0, 0, 1000)
        first = thread.push_frame("main", -1, EXIT_SENTINEL)
        second = thread.push_frame("helper", 5, 6)
        assert thread.current_frame() is second
        assert thread.pop_frame() is second
        assert thread.current_frame() is first

    def test_frame_ids_unique(self):
        thread = ThreadContext(0, 0, 1000)
        ids = set()
        for index in range(5):
            frame = thread.push_frame("f", index, index + 1)
            ids.add(frame.frame_id)
            thread.pop_frame()
        assert len(ids) == 5

    def test_pop_empty_returns_none(self):
        thread = ThreadContext(0, 0, 1000)
        assert thread.pop_frame() is None
        assert thread.current_frame() is None


class TestSnapshot:
    def test_roundtrip_preserves_everything(self):
        thread = ThreadContext(2, 7, 5000)
        thread.regs["r3"] = 42
        thread.regs["sp"] = 4990
        thread.status = ThreadStatus.BLOCKED
        thread.block_reason = ("lock", 16)
        thread.push_frame("main", -1, EXIT_SENTINEL)
        thread.push_frame("g", 3, 4)

        payload = json.loads(json.dumps(thread.snapshot()))
        restored = ThreadContext.from_snapshot(payload)
        assert restored.tid == 2
        assert restored.pc == 7
        assert restored.regs["r3"] == 42
        assert restored.regs["sp"] == 4990
        assert restored.status == ThreadStatus.BLOCKED
        assert restored.block_reason == ("lock", 16)
        assert [f.func for f in restored.frames] == ["main", "g"]

    def test_frame_id_counter_survives(self):
        thread = ThreadContext(0, 0, 1000)
        thread.push_frame("a", -1, 0)
        thread.push_frame("b", 1, 2)
        restored = ThreadContext.from_snapshot(thread.snapshot())
        new_frame = restored.push_frame("c", 3, 4)
        assert new_frame.frame_id == 2

    def test_snapshot_with_no_block_reason(self):
        thread = ThreadContext(0, 0, 1000)
        restored = ThreadContext.from_snapshot(thread.snapshot())
        assert restored.block_reason is None
