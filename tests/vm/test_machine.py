"""Unit tests for the interpreter core: threads, locks, hooks, snapshots."""

import pytest

from repro.isa import assemble
from repro.vm import (
    DeadlockError,
    Machine,
    RoundRobinScheduler,
    Tool,
    VMError,
)
from repro.vm.machine import MachineSnapshot
from repro.vm.thread import ThreadStatus

from tests.conftest import run_minic


COUNTER_RACE = """
int counter;
int mtx;
int worker(int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        lock(&mtx);
        counter = counter + 1;
        unlock(&mtx);
    }
    return counter;
}
int main() {
    int a; int b;
    a = spawn(worker, 25);
    b = spawn(worker, 25);
    join(a);
    join(b);
    print(counter);
    return 0;
}
"""


class TestThreads:
    def test_spawn_join_counts(self):
        machine = run_minic(COUNTER_RACE)
        assert machine.output == [50]

    def test_join_returns_exit_value(self):
        source = """
int child(int n) { return n * 3; }
int main() {
    int t;
    t = spawn(child, 14);
    print(join(t));
    return 0;
}
"""
        assert run_minic(source).output == [42]

    def test_join_already_finished_thread(self):
        source = """
int child(int n) { return n; }
int main() {
    int t; int i;
    t = spawn(child, 9);
    for (i = 0; i < 500; i = i + 1) { yield(); }
    print(join(t));
    return 0;
}
"""
        assert run_minic(source).output == [9]

    def test_join_unknown_tid_faults(self):
        source = "int main() { return join(99); }"
        with pytest.raises(VMError):
            run_minic(source)

    def test_main_return_does_not_kill_others(self):
        source = """
int g;
int child(int n) {
    int i;
    for (i = 0; i < 10; i = i + 1) { g = g + 1; }
    print(g);
    return 0;
}
int main() {
    spawn(child, 0);
    return 0;
}
"""
        machine = run_minic(source)
        assert machine.output == [10]

    def test_thread_stacks_disjoint(self):
        source = """
int out[4];
int child(int slot) {
    int local[8];
    int i;
    for (i = 0; i < 8; i = i + 1) { local[i] = slot * 100 + i; }
    out[slot] = local[7];
    return 0;
}
int main() {
    int a; int b;
    a = spawn(child, 1);
    b = spawn(child, 2);
    join(a); join(b);
    print(out[1]); print(out[2]);
    return 0;
}
"""
        assert run_minic(source).output == [107, 207]


class TestLocks:
    def test_mutual_exclusion_under_preemption(self):
        from repro.vm import RandomScheduler
        for seed in range(5):
            machine = run_minic(
                COUNTER_RACE,
                scheduler=RandomScheduler(seed=seed, switch_prob=0.3))
            assert machine.output == [50], "lost update despite lock"

    def test_unlock_not_held_faults(self):
        source = """
int m;
int main() { unlock(&m); return 0; }
"""
        with pytest.raises(VMError):
            run_minic(source)

    def test_recursive_lock_faults(self):
        source = """
int m;
int main() { lock(&m); lock(&m); return 0; }
"""
        with pytest.raises(VMError):
            run_minic(source)

    def test_deadlock_detected(self):
        source = """
int m1; int m2;
int child(int unused) {
    lock(&m2);
    sleep(50);
    lock(&m1);
    unlock(&m1); unlock(&m2);
    return 0;
}
int main() {
    int t;
    lock(&m1);
    t = spawn(child, 0);
    sleep(100);
    lock(&m2);
    unlock(&m2); unlock(&m1);
    join(t);
    return 0;
}
"""
        with pytest.raises(DeadlockError):
            run_minic(source)

    def test_lock_handoff_wakes_waiter(self):
        source = """
int m; int order[2]; int pos;
int child(int unused) {
    lock(&m);
    order[pos] = 2;
    pos = pos + 1;
    unlock(&m);
    return 0;
}
int main() {
    int t;
    lock(&m);
    t = spawn(child, 0);
    sleep(30);
    order[pos] = 1;
    pos = pos + 1;
    unlock(&m);
    join(t);
    print(order[0]); print(order[1]);
    return 0;
}
"""
        assert run_minic(source).output == [1, 2]


class TestRunControl:
    def test_max_steps_limit(self):
        source = "int main() { while (1) { } return 0; }"
        machine = run_minic(source, max_steps=1000)
        assert not machine.finished

    def test_stop_request(self):
        program = assemble("""
func main
  mov r0, 0
loop:
  add r0, r0, 1
  jmp loop
""")
        class Stopper(Tool):
            wants_instr_events = True
            def __init__(self):
                self.count = 0
            def on_instr(self, event):
                self.count += 1
                if self.count >= 10:
                    machine.stop_request = True
        stopper = Stopper()
        machine = Machine(program, tools=[stopper])
        result = machine.run()
        assert result.reason == "stop"
        assert stopper.count == 10

    def test_breakpoint_stops_before_execution(self):
        program = assemble("""
func main
  mov r0, 1
  mov r1, 2
  halt
""")
        machine = Machine(program)
        machine.breakpoints = {1}
        result = machine.run()
        assert result.reason == "breakpoint"
        assert machine.threads[0].pc == 1
        assert machine.threads[0].regs["r1"] == 0
        machine.step_over_breakpoint()
        result = machine.run()
        assert result.reason == "exit"
        assert machine.threads[0].regs["r1"] == 2

    def test_pc_out_of_range_faults(self):
        program = assemble("""
func main
  mov r0, 999
  ijmp r0
""")
        with pytest.raises(VMError):
            Machine(program).run()

    def test_division_by_zero_faults(self):
        with pytest.raises(VMError):
            run_minic("int main() { int z; z = 0; return 1 / z; }")

    def test_stack_overflow_detected(self):
        source = """
int recurse(int n) { return recurse(n + 1); }
int main() { return recurse(0); }
"""
        with pytest.raises(VMError) as excinfo:
            run_minic(source, max_steps=10_000_000)
        assert "stack overflow" in str(excinfo.value)


class TestTools:
    def test_instr_events_have_def_use_values(self):
        program = assemble("""
.global g 1
func main
  mov r0, 7
  lea r1, g
  st [r1], r0
  ld r2, [r1]
  halt
""")
        events = []
        class Collector(Tool):
            wants_instr_events = True
            def on_instr(self, event):
                events.append(event)
        Machine(program, tools=[Collector()]).run()
        store = events[2]
        addr = program.globals["g"].addr
        assert store.mem_writes == ((addr, 7),)
        load = events[3]
        assert load.mem_reads == ((addr, 7),)
        assert ("r2", 7) in load.reg_writes

    def test_syscall_events(self):
        seen = []
        class SysWatch(Tool):
            def on_syscall(self, event):
                seen.append((event.name, event.result))
        program = assemble("""
func main
  mov r0, 5
  sys print
  sys input
  halt
""")
        machine = Machine(program, tools=[SysWatch()], inputs=[42])
        machine.run()
        assert ("print", None) in seen
        assert ("input", 42) in seen

    def test_thread_lifecycle_events(self):
        starts = []
        exits = []
        class Lifecycle(Tool):
            def on_thread_start(self, tid, parent, start_pc, arg):
                starts.append((tid, parent))
            def on_thread_exit(self, tid, exit_value):
                exits.append(tid)
        source = """
int child(int n) { return 0; }
int main() { join(spawn(child, 0)); return 0; }
"""
        from repro.lang import compile_source
        machine = Machine(compile_source(source), tools=[Lifecycle()])
        machine.run()
        assert (1, 0) in starts
        assert 1 in exits

    def test_no_instr_tools_means_no_event_overhead(self):
        # White-box: the tracing path allocates per-instruction tuples;
        # without subscribers the machine should not call on_instr at all.
        class Passive(Tool):
            wants_instr_events = False
            def on_instr(self, event):
                raise AssertionError("should never be called")
        program = assemble("func main\n  mov r0, 1\n  halt\n")
        Machine(program, tools=[Passive()]).run()


class TestSnapshot:
    def test_snapshot_restore_resumes_identically(self):
        source = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 100; i = i + 1) { s = s + i; }
    print(s);
    return 0;
}
"""
        from repro.lang import compile_source
        program = compile_source(source)
        machine = Machine(program)
        machine.run(max_steps=150)
        snap = machine.snapshot()
        machine.run()
        expected = list(machine.output)

        import json
        payload = json.loads(json.dumps(snap.to_dict()))
        restored = Machine.from_snapshot(
            program, MachineSnapshot.from_dict(payload))
        restored.run()
        assert restored.output == expected

    def test_reset_counters(self):
        machine = run_minic("int main() { print(1); return 0; }",
                            max_steps=10)
        machine.reset_counters()
        assert machine.global_seq == 0
        assert all(t.instr_count == 0 for t in machine.threads.values())


class TestVariableAccess:
    def test_read_global(self):
        machine = run_minic("int g; int main() { g = 5; return 0; }")
        assert machine.read_global("g") == 5

    def test_read_local_register(self):
        program_src = """
int main() {
    int x;
    x = 77;
    while (1) { yield(); }
    return 0;
}
"""
        from repro.lang import compile_source
        program = compile_source(program_src)
        machine = Machine(program)
        machine.run(max_steps=200)
        assert machine.read_local(0, "x") == 77

    def test_read_unknown_global_faults(self):
        machine = run_minic("int main() { return 0; }")
        with pytest.raises(VMError):
            machine.read_global("nope")
