"""Tests for the tool subscription machinery."""

from repro.isa import assemble
from repro.vm import Machine, Tool


PROGRAM = """
func main
  mov r0, 1
  sys print
  halt
"""


class TestSubscriptionIndexing:
    def test_only_overriders_get_callbacks(self):
        calls = []

        class StepOnly(Tool):
            def on_step(self, tid):
                calls.append("step")

        class SyscallOnly(Tool):
            def on_syscall(self, event):
                calls.append("syscall")

        class Passive(Tool):
            pass

        machine = Machine(assemble(PROGRAM),
                          tools=[StepOnly(), SyscallOnly(), Passive()])
        machine.run()
        assert "step" in calls
        assert "syscall" in calls

    def test_add_tool_after_start(self):
        events = []

        class Late(Tool):
            wants_instr_events = True
            def on_instr(self, event):
                events.append(event.addr)

        machine = Machine(assemble(PROGRAM))
        machine.run(max_steps=1)
        machine.add_tool(Late())
        machine.run()
        # The late tool sees only the remaining instructions.
        assert events and 0 not in events

    def test_on_start_and_finish_called_once(self):
        lifecycle = []

        class Watcher(Tool):
            def on_start(self, machine):
                lifecycle.append("start")
            def on_finish(self, machine):
                lifecycle.append("finish")

        machine = Machine(assemble(PROGRAM), tools=[Watcher()])
        machine.run(max_steps=1)
        machine.run()
        assert lifecycle[0] == "start"
        assert lifecycle.count("start") == 1
        # on_finish fires at the end of each run() call.
        assert lifecycle.count("finish") == 2

    def test_event_ordering_step_before_instr(self):
        order = []

        class Both(Tool):
            wants_instr_events = True
            def on_step(self, tid):
                order.append("step")
            def on_instr(self, event):
                order.append("instr")

        machine = Machine(assemble(PROGRAM), tools=[Both()])
        machine.run(max_steps=2)
        assert order[:4] == ["step", "instr", "step", "instr"]

    def test_instr_events_carry_sequence_numbers(self):
        seqs = []

        class SeqWatch(Tool):
            wants_instr_events = True
            def on_instr(self, event):
                seqs.append((event.seq, event.tid, event.tindex))

        machine = Machine(assemble(PROGRAM), tools=[SeqWatch()])
        machine.run()
        assert [s for s, _t, _i in seqs] == sorted(
            s for s, _t, _i in seqs)
        assert [i for _s, _t, i in seqs] == list(range(len(seqs)))
