"""The public API surface: everything advertised exists and imports."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet_names(self):
        # The README quickstart must keep working.
        for name in ("compile_source", "record_region", "replay",
                     "RandomScheduler", "RegionSpec", "SlicingSession",
                     "DrDebugSession", "DrDebugCLI", "expose_and_record",
                     "detect_races"):
            assert hasattr(repro, name), name


SUBPACKAGES = [
    "repro.isa", "repro.lang", "repro.vm", "repro.pinplay",
    "repro.analysis", "repro.slicing", "repro.debugger", "repro.maple",
    "repro.detect", "repro.workloads", "repro.cli",
]


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", [
        m for m in SUBPACKAGES if m != "repro.cli"])
    def test_all_exports_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), "%s.%s" % (module_name, name)

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_has_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40, module_name
