"""The public API surface: everything advertised exists and imports.

Extended for the unified-surface redesign: the blessed top-level
``__all__`` (including the serve client and the config resolver), the
deprecated-alias shims (module ``__getattr__``) that must warn exactly
once per use, and the ``repro.config`` precedence knobs.
"""

import importlib
import warnings

import pytest

import repro


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        names = [n for n in repro.__all__ if n != "__version__"]
        assert names == sorted(names)
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet_names(self):
        # The README quickstart must keep working.
        for name in ("compile_source", "record", "record_region", "replay",
                     "RandomScheduler", "RegionSpec", "SlicingSession",
                     "DrDebugSession", "DrDebugCLI", "expose_and_record",
                     "detect_races", "DebugClient", "SliceOptions", "OBS",
                     "config"):
            assert hasattr(repro, name), name

    def test_record_is_record_region(self):
        assert repro.record is repro.record_region

    def test_config_is_the_resolver_module(self):
        assert repro.config.slice_shards() >= 1
        assert repro.config.slice_index() in ("ddg", "columnar", "rows", "reexec")


class TestDeprecatedAliases:
    @pytest.mark.parametrize("old,new", sorted(
        repro._DEPRECATED_ALIASES.items()))
    def test_alias_warns_and_resolves(self, old, new):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(repro, old)
        assert value is getattr(repro, new)
        assert any(issubclass(w.category, DeprecationWarning)
                   and old in str(w.message) for w in caught)

    def test_aliases_stay_out_of_all(self):
        for old in repro._DEPRECATED_ALIASES:
            assert old not in repro.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_api  # noqa: B018


SUBPACKAGES = [
    "repro.isa", "repro.lang", "repro.vm", "repro.pinplay",
    "repro.analysis", "repro.slicing", "repro.debugger", "repro.maple",
    "repro.detect", "repro.workloads", "repro.cli",
    "repro.serve", "repro.obs", "repro.config", "repro.deprecation",
]


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", [
        m for m in SUBPACKAGES if m != "repro.cli"])
    def test_all_exports_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), "%s.%s" % (module_name, name)

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_has_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40, module_name


class TestConfigKnobs:
    def test_every_knob_has_env_doc_and_default(self):
        for knob in repro.config.KNOBS.values():
            assert knob.env.startswith("REPRO_")
            assert knob.doc
            # The default must pass the knob's own validator.
            assert knob.coerce(knob.default, "default") == knob.default

    def test_precedence_explicit_beats_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLICE_SHARDS", "3")
        assert repro.config.slice_shards() == 3
        assert repro.config.slice_shards(cli=5) == 5
        assert repro.config.slice_shards(explicit=7, cli=5) == 7

    def test_invalid_env_raises_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLICE_INDEX", "quantum")
        with pytest.raises(ValueError):
            repro.config.slice_index()

    def test_precedence_table_mentions_every_env(self):
        table = repro.config.precedence_table()
        for knob in repro.config.KNOBS.values():
            assert knob.env in table


class TestReportSchema:
    """The unified analysis-report surface (repro.analysis.report)."""

    def _racy(self):
        from repro.detect import detect_races
        from repro.lang import compile_source
        from repro.pinplay import RegionSpec, record_region
        from repro.vm import RandomScheduler
        source = """
        int x;
        int bump(int u) { x = x + 1; return 0; }
        int main() {
            int a; int b;
            a = spawn(bump, 0); b = spawn(bump, 0);
            join(a); join(b);
            print(x);
            return 0;
        }
        """
        program = compile_source(source, name="schema_demo")
        pinball = record_region(
            program, RandomScheduler(seed=1, switch_prob=0.3), RegionSpec())
        return program, pinball, detect_races(pinball, program)

    def test_races_payload_validates_and_keeps_legacy_fields(self):
        from repro.analysis.report import (SCHEMA, SCHEMA_VERSION,
                                           races_report_payload,
                                           validate_report)
        program, _pinball, races = self._racy()
        payload = races_report_payload(races, program)
        validate_report(payload)
        assert payload["schema"] == SCHEMA
        assert payload["schema_version"] == SCHEMA_VERSION
        # Legacy spellings ride along for one deprecation cycle and
        # mirror the canonical fields exactly.
        assert payload["race_count"] == payload["finding_count"]
        assert payload["races"] == payload["findings"]

    def test_race_payload_wrapper_is_schema_shaped(self):
        from repro.analysis.report import races_report_payload
        from repro.serve.sessions import race_payload
        program, _pinball, races = self._racy()
        assert race_payload(races, program) == races_report_payload(
            races, program)

    def test_maple_result_payload_validates(self):
        from repro.analysis.report import validate_report
        from repro.maple import expose_and_record
        from repro.lang import compile_source
        source = """
        int x;
        int bump(int u) { x = x + 1; return 0; }
        int main() {
            int a; int b;
            a = spawn(bump, 0); b = spawn(bump, 0);
            join(a); join(b);
            assert(x == 2, 11);
            return 0;
        }
        """
        program = compile_source(source, name="maple_demo")
        result = expose_and_record(program, profile_seeds=range(4))
        payload = result.payload()
        validate_report(payload)
        assert payload["kind"] == "maple"
        # Legacy integer spelling of the candidate count rides along.
        assert payload["candidates"] == payload["candidate_count"]

    def test_hunt_payload_validates(self):
        from repro.analysis.hunt import hunt
        from repro.analysis.report import HuntFinding, validate_report
        program, pinball, _races = self._racy()
        result = hunt(pinball, program, budget=4, profile_seeds=2,
                      minimize_budget=4, slice_reports=False)
        payload = result.payload()
        validate_report(payload)
        assert payload["kind"] == "hunt"
        for row in payload["findings"]:
            finding = HuntFinding.from_payload(row)
            assert finding.to_payload() == row

    def test_deprecated_field_reads_old_spelling_with_warning(self):
        from repro.deprecation import deprecated_field
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert deprecated_field({"race_count": 3}, "race_count",
                                    "finding_count") == 3
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert deprecated_field({"finding_count": 4}, "race_count",
                                    "finding_count") == 4
        assert not caught

    def test_validate_report_rejects_malformed(self):
        from repro.analysis.report import validate_report
        with pytest.raises(ValueError):
            validate_report({"schema": "something.else",
                             "schema_version": 1, "kind": "races",
                             "finding_count": 0, "findings": []})
        with pytest.raises(ValueError):
            validate_report({"schema": "repro.report", "schema_version": 1,
                             "kind": "nope", "finding_count": 0,
                             "findings": []})
