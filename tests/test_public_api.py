"""The public API surface: everything advertised exists and imports.

Extended for the unified-surface redesign: the blessed top-level
``__all__`` (including the serve client and the config resolver), the
deprecated-alias shims (module ``__getattr__``) that must warn exactly
once per use, and the ``repro.config`` precedence knobs.
"""

import importlib
import warnings

import pytest

import repro


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        names = [n for n in repro.__all__ if n != "__version__"]
        assert names == sorted(names)
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet_names(self):
        # The README quickstart must keep working.
        for name in ("compile_source", "record", "record_region", "replay",
                     "RandomScheduler", "RegionSpec", "SlicingSession",
                     "DrDebugSession", "DrDebugCLI", "expose_and_record",
                     "detect_races", "DebugClient", "SliceOptions", "OBS",
                     "config"):
            assert hasattr(repro, name), name

    def test_record_is_record_region(self):
        assert repro.record is repro.record_region

    def test_config_is_the_resolver_module(self):
        assert repro.config.slice_shards() >= 1
        assert repro.config.slice_index() in ("ddg", "columnar", "rows", "reexec")


class TestDeprecatedAliases:
    @pytest.mark.parametrize("old,new", sorted(
        repro._DEPRECATED_ALIASES.items()))
    def test_alias_warns_and_resolves(self, old, new):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(repro, old)
        assert value is getattr(repro, new)
        assert any(issubclass(w.category, DeprecationWarning)
                   and old in str(w.message) for w in caught)

    def test_aliases_stay_out_of_all(self):
        for old in repro._DEPRECATED_ALIASES:
            assert old not in repro.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_api  # noqa: B018


SUBPACKAGES = [
    "repro.isa", "repro.lang", "repro.vm", "repro.pinplay",
    "repro.analysis", "repro.slicing", "repro.debugger", "repro.maple",
    "repro.detect", "repro.workloads", "repro.cli",
    "repro.serve", "repro.obs", "repro.config", "repro.deprecation",
]


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", [
        m for m in SUBPACKAGES if m != "repro.cli"])
    def test_all_exports_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), "%s.%s" % (module_name, name)

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_has_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40, module_name


class TestConfigKnobs:
    def test_every_knob_has_env_doc_and_default(self):
        for knob in repro.config.KNOBS.values():
            assert knob.env.startswith("REPRO_")
            assert knob.doc
            # The default must pass the knob's own validator.
            assert knob.coerce(knob.default, "default") == knob.default

    def test_precedence_explicit_beats_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLICE_SHARDS", "3")
        assert repro.config.slice_shards() == 3
        assert repro.config.slice_shards(cli=5) == 5
        assert repro.config.slice_shards(explicit=7, cli=5) == 7

    def test_invalid_env_raises_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLICE_INDEX", "quantum")
        with pytest.raises(ValueError):
            repro.config.slice_index()

    def test_precedence_table_mentions_every_env(self):
        table = repro.config.precedence_table()
        for knob in repro.config.KNOBS.values():
            assert knob.env in table
