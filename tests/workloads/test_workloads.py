"""Tests for the workload programs (bug analogs, PARSEC, SPECOMP)."""

import pytest

from repro.pinplay import RegionSpec, record_region, replay
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler
from repro.workloads import (
    BUG_WORKLOADS,
    PARSEC_KERNELS,
    SPECOMP_KERNELS,
    find_marker_skip,
    get_bug,
    get_parsec,
    get_specomp,
)
from repro.workloads.util import MARKER_RACY_PHASE, MARKER_WARMUP_DONE


class TestRegistries:
    def test_three_bugs_match_table1(self):
        assert set(BUG_WORKLOADS) == {"pbzip2", "aget", "mozilla"}

    def test_eight_parsec_kernels(self):
        assert len(PARSEC_KERNELS) == 8
        kinds = {k.kind for k in PARSEC_KERNELS.values()}
        assert kinds == {"app", "kernel"}

    def test_five_specomp_kernels(self):
        assert set(SPECOMP_KERNELS) == {
            "ammp", "apsi", "galgel", "mgrid", "wupwise"}

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            get_bug("nope")
        with pytest.raises(KeyError):
            get_parsec("nope")
        with pytest.raises(KeyError):
            get_specomp("nope")


class TestParsecKernels:
    @pytest.mark.parametrize("name", sorted(PARSEC_KERNELS))
    def test_compiles_and_runs_clean(self, name):
        kernel = get_parsec(name)
        program = kernel.build(units=15, nthreads=4)
        machine = Machine(program, scheduler=RoundRobinScheduler(25))
        result = machine.run(max_steps=500_000)
        assert machine.failure is None
        assert result.reason in ("done", "exit")
        assert len(machine.threads) == 4

    @pytest.mark.parametrize("name", sorted(PARSEC_KERNELS))
    def test_units_scale_instructions_linearly(self, name):
        kernel = get_parsec(name)
        counts = []
        for units in (10, 20):
            program = kernel.build(units=units, nthreads=2)
            machine = Machine(program, scheduler=RoundRobinScheduler(25))
            result = machine.run(max_steps=500_000)
            counts.append(machine.threads[0].instr_count)
        ratio = counts[1] / counts[0]
        assert 1.5 < ratio < 2.5

    def test_total_work_tracks_thread_count(self):
        kernel = get_parsec("blackscholes")
        program = kernel.build(units=30, nthreads=4)
        machine = Machine(program, scheduler=RoundRobinScheduler(25))
        machine.run(max_steps=500_000)
        total = sum(t.instr_count for t in machine.threads.values())
        main = machine.threads[0].instr_count
        # The paper: total across threads is 3-4x the main-thread length.
        assert 2.5 < total / main < 4.5

    def test_kernels_deterministic_under_fixed_schedule(self):
        kernel = get_parsec("canneal")   # uses rand()
        outputs = []
        for _ in range(2):
            program = kernel.build(units=20, nthreads=2)
            machine = Machine(program, scheduler=RoundRobinScheduler(25),
                              rand_seed=7)
            machine.run(max_steps=500_000)
            outputs.append(list(machine.output))
        assert outputs[0] == outputs[1]


class TestSpecompKernels:
    @pytest.mark.parametrize("name", sorted(SPECOMP_KERNELS))
    def test_compiles_and_runs_clean(self, name):
        kernel = get_specomp(name)
        program = kernel.build(units=15)
        machine = Machine(program, scheduler=RoundRobinScheduler(25))
        result = machine.run(max_steps=500_000)
        assert machine.failure is None
        assert result.reason in ("done", "exit")

    @pytest.mark.parametrize("name", sorted(SPECOMP_KERNELS))
    def test_kernels_are_call_dense(self, name):
        """Each kernel's hot loop calls helpers, generating save/restore
        pairs — the property Figure 13 depends on."""
        from repro.isa.instructions import Opcode
        program = get_specomp(name).build(units=5)
        worker = program.functions["worker"]
        calls = [i for i in worker.instrs if i.op == Opcode.CALL]
        assert calls, "worker has no calls"


class TestBugWorkloads:
    @pytest.mark.parametrize("name", sorted(BUG_WORKLOADS))
    def test_bug_exposed_and_replayable(self, name):
        workload = get_bug(name)
        program = workload.build(warmup=150)
        pinball, seed = workload.expose(program, seeds=range(48))
        assert pinball is not None, "no seed exposed %s" % name
        machine, result = replay(pinball, program)
        assert result.failure is not None
        assert result.failure["code"] == workload.failure_code

    @pytest.mark.parametrize("name", sorted(BUG_WORKLOADS))
    def test_some_schedule_is_benign(self, name):
        """The bugs are schedule-dependent: at least one seed passes."""
        workload = get_bug(name)
        program = workload.build(warmup=50)
        benign = False
        for seed in range(60):
            machine = Machine(
                program,
                scheduler=RandomScheduler(seed=seed,
                                          switch_prob=workload.switch_prob))
            machine.run(max_steps=1_000_000)
            if machine.failure is None:
                benign = True
                break
        assert benign, "%s fails under every schedule — not a race" % name

    def test_warmup_scales_whole_program_size(self):
        workload = get_bug("pbzip2")
        small = workload.build(warmup=100)
        big = workload.build(warmup=2000)
        counts = []
        for program in (small, big):
            machine = Machine(program, scheduler=RoundRobinScheduler(40))
            machine.run(max_steps=2_000_000)
            counts.append(machine.threads[0].instr_count)
        assert counts[1] > counts[0] + 5_000


class TestPhaseMarkers:
    def test_find_marker_skip(self):
        workload = get_bug("mozilla")
        program = workload.build(warmup=300)
        skip = find_marker_skip(program, RoundRobinScheduler(40),
                                marker=MARKER_WARMUP_DONE)
        assert skip is not None
        # The warm-up loop body is ~7 instructions per iteration.
        assert skip > 300 * 4

    def test_racy_marker_after_warmup_marker(self):
        workload = get_bug("pbzip2")
        program = workload.build(warmup=200)
        warm = find_marker_skip(program, RoundRobinScheduler(40),
                                marker=MARKER_WARMUP_DONE)
        racy = find_marker_skip(program, RoundRobinScheduler(40),
                                marker=MARKER_RACY_PHASE)
        assert warm is not None and racy is not None
        assert racy > warm

    def test_buggy_region_skip_usable_for_logging(self):
        workload = get_bug("pbzip2")
        program = workload.build(warmup=400)
        pinball, seed = workload.expose(program, seeds=range(48))
        assert pinball is not None
        skip = workload.buggy_region_skip(program, seed)
        from repro.vm import RandomScheduler
        region_pb = record_region(
            program,
            RandomScheduler(seed=seed, switch_prob=workload.switch_prob),
            RegionSpec(skip=skip))
        # The buggy region still captures the failure, with fewer
        # instructions than the whole-program pinball.
        assert region_pb.meta["failure"] is not None
        assert region_pb.total_instructions < pinball.total_instructions
