"""Tests for the pointer-chasing workload family (struct/heap band)."""

import pytest

from repro.pinplay import replay
from repro.vm import Machine, RandomScheduler, RoundRobinScheduler
from repro.vm.memory import HEAP_POISON
from repro.workloads import (
    POINTER_BUGS,
    POINTER_KERNELS,
    get_pointer,
    get_pointer_bug,
)


class TestRegistries:
    def test_three_kernels(self):
        assert set(POINTER_KERNELS) == {"list_chase", "tree_sum",
                                        "hashchain"}

    def test_two_bug_analogs(self):
        assert set(POINTER_BUGS) == {"uaf_chase", "dangle_reuse"}
        assert POINTER_BUGS["uaf_chase"].heap_poison
        assert not POINTER_BUGS["dangle_reuse"].heap_poison

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            get_pointer("nope")
        with pytest.raises(KeyError):
            get_pointer_bug("nope")


class TestPointerKernels:
    @pytest.mark.parametrize("name", sorted(POINTER_KERNELS))
    def test_compiles_and_runs_clean(self, name):
        kernel = get_pointer(name)
        program = kernel.build(units=15, nthreads=4)
        machine = Machine(program, scheduler=RoundRobinScheduler(25))
        result = machine.run(max_steps=500_000)
        assert machine.failure is None
        assert result.reason in ("done", "exit")
        assert len(machine.threads) == 4

    @pytest.mark.parametrize("name", sorted(POINTER_KERNELS))
    def test_units_scale_instructions(self, name):
        kernel = get_pointer(name)
        counts = []
        for units in (10, 20):
            program = kernel.build(units=units, nthreads=2)
            machine = Machine(program, scheduler=RoundRobinScheduler(25))
            machine.run(max_steps=500_000)
            counts.append(machine.threads[0].instr_count)
        assert counts[1] > counts[0] * 1.4

    @pytest.mark.parametrize("name", sorted(POINTER_KERNELS))
    def test_deterministic_under_fixed_schedule(self, name):
        kernel = get_pointer(name)
        outputs = []
        for _ in range(2):
            program = kernel.build(units=12, nthreads=3)
            machine = Machine(program, scheduler=RoundRobinScheduler(25))
            machine.run(max_steps=500_000)
            outputs.append(list(machine.output))
        assert outputs[0] == outputs[1]

    def test_list_chase_sum_matches_model(self):
        program = get_pointer("list_chase").build(units=20, nthreads=3)
        machine = Machine(program, scheduler=RoundRobinScheduler(25))
        machine.run(max_steps=500_000)
        expected = sum(u * 3 + wid
                       for wid in range(3) for u in range(20))
        assert machine.output[0] == expected

    def test_hashchain_allocates_chain_entries(self):
        """The table's entries live on the heap (new Entry per insert)."""
        program = get_pointer("hashchain").build(units=25, nthreads=2)
        machine = Machine(program, scheduler=RoundRobinScheduler(25))
        machine.run(max_steps=500_000)
        assert machine.memory.heap_next > machine.memory.heap_base


class TestPointerBugs:
    @pytest.mark.parametrize("name", sorted(POINTER_BUGS))
    def test_bug_exposed_and_replayable(self, name):
        workload = get_pointer_bug(name)
        program = workload.build(warmup=150)
        pinball, seed = workload.expose(program, seeds=range(48))
        assert pinball is not None, "no seed exposed %s" % name
        machine, result = replay(pinball, program)
        assert result.failure is not None
        assert result.failure["code"] == workload.failure_code

    @pytest.mark.parametrize("name", sorted(POINTER_BUGS))
    def test_some_schedule_is_benign(self, name):
        workload = get_pointer_bug(name)
        program = workload.build(warmup=50)
        benign = False
        for seed in range(60):
            machine = Machine(
                program,
                scheduler=RandomScheduler(seed=seed,
                                          switch_prob=workload.switch_prob),
                heap_poison=workload.heap_poison)
            machine.run(max_steps=1_000_000)
            if machine.failure is None:
                benign = True
                break
        assert benign, "%s fails under every schedule — not a race" % name

    def test_uaf_pinball_carries_poison_flag(self):
        workload = get_pointer_bug("uaf_chase")
        program = workload.build(warmup=150)
        pinball, _seed = workload.expose(program, seeds=range(48))
        assert pinball is not None
        snapshot = pinball.to_dict()["snapshot"]
        assert snapshot["memory"].get("poison") is True

    def test_uaf_symptom_is_the_poison_value(self):
        """The walker's assert trips on reading HEAP_POISON through the
        freed node's value field."""
        workload = get_pointer_bug("uaf_chase")
        program = workload.build(warmup=150)
        pinball, seed = workload.expose(program, seeds=range(48))
        machine, result = replay(pinball, program)
        failure = result.failure
        tid = failure["tid"]
        # r0 at the assert held the condition; the walker's local v was
        # compared against the poison constant, so the poisoned word is
        # still resident in memory.
        assert HEAP_POISON in dict(machine.memory.nonzero_items()).values()

    def test_dangle_reuse_needs_no_poison(self):
        """The dangling read observes the *recycled* object's fields —
        the failure reproduces with poisoning off."""
        workload = get_pointer_bug("dangle_reuse")
        assert not workload.heap_poison
        program = workload.build(warmup=150)
        pinball, _seed = workload.expose(program, seeds=range(48))
        assert pinball is not None
        assert "poison" not in pinball.to_dict()["snapshot"]["memory"]
