"""Unit tests for the observability registry itself."""

import json

import pytest

from repro.obs import (NULL_COUNTER, NULL_HISTOGRAM, Counter, Histogram,
                       ObsRegistry)


@pytest.fixture
def reg():
    registry = ObsRegistry()
    registry.enable()
    return registry


# -- counters -----------------------------------------------------------------

def test_counters_accumulate(reg):
    reg.inc("a.x")
    reg.inc("a.x")
    reg.add("a.y", 40)
    reg.add("a.y", 2)
    assert reg.value("a.x") == 2
    assert reg.value("a.y") == 42
    assert reg.counters() == {"a.x": 2, "a.y": 42}


def test_counter_handle_is_live(reg):
    counter = reg.counter("c")
    assert isinstance(counter, Counter)
    counter.inc()
    counter.add(9)
    assert reg.value("c") == 10


def test_untouched_counter_reads_zero(reg):
    assert reg.value("never") == 0


def test_disabled_mutators_are_noops():
    registry = ObsRegistry()          # starts disabled
    registry.inc("x")
    registry.add("x", 5)
    registry.observe("h", 3)
    assert registry.counters() == {}
    assert registry.snapshot()["histograms"] == {}


def test_disabled_counter_is_null_singleton():
    registry = ObsRegistry()
    assert registry.counter("x") is NULL_COUNTER
    assert registry.histogram("h") is NULL_HISTOGRAM
    NULL_COUNTER.inc()                # must not raise or record anything
    NULL_COUNTER.add(7)
    NULL_HISTOGRAM.observe(3)
    # Crucially, no dict entry was created on the disabled path.
    assert registry.counters() == {}


# -- histograms ---------------------------------------------------------------

def test_histogram_buckets_and_stats(reg):
    for value in (0, 1, 5, 100, 10**7):
        reg.observe("h", value)
    hist = reg.histogram("h")
    assert isinstance(hist, Histogram)
    assert hist.count == 5
    assert hist.min == 0 and hist.max == 10**7
    assert hist.mean == pytest.approx((0 + 1 + 5 + 100 + 10**7) / 5)
    data = hist.to_dict()
    assert sum(data["buckets"]) == 5
    assert data["buckets"][-1] == 1   # 10**7 overflows the largest bound
    # 0 and 1 both land in the first bucket (bound 1).
    assert data["buckets"][0] == 2


def test_empty_histogram_mean_is_zero():
    hist = Histogram("h")
    assert hist.mean == 0.0
    assert hist.to_dict()["min"] is None


# -- spans --------------------------------------------------------------------

def test_spans_nest_with_slash_paths(reg):
    with reg.span("outer"):
        with reg.span("inner"):
            pass
        with reg.span("inner"):
            pass
    stats = reg.span_stats()
    assert set(stats) == {"outer", "outer/inner"}
    assert stats["outer"]["count"] == 1
    assert stats["outer/inner"]["count"] == 2
    assert stats["outer"]["total_sec"] >= 0.0


def test_span_elapsed_measured_even_when_disabled():
    registry = ObsRegistry()          # disabled
    with registry.span("t") as span:
        sum(range(1000))
    assert span.elapsed > 0.0
    assert registry.span_stats() == {}     # ... but nothing recorded


def test_span_stack_recovers_from_exceptions(reg):
    with pytest.raises(RuntimeError):
        with reg.span("a"):
            with reg.span("b"):
                raise RuntimeError("boom")
    # The stack unwound fully; new spans are top-level again.
    with reg.span("c"):
        pass
    assert "c" in reg.span_stats()
    assert reg._span_stack == []


def test_span_recording_gated_on_enablement_at_entry(reg):
    span = reg.span("gate")
    with span:
        reg.disable()
    # Entered enabled: recorded despite being disabled at exit.
    assert "gate" in reg.span_stats()


# -- lifecycle / export -------------------------------------------------------

def test_scope_restores_enablement():
    registry = ObsRegistry()
    with registry.scope(enabled=True):
        assert registry.enabled
        registry.inc("in_scope")
    assert not registry.enabled
    assert registry.value("in_scope") == 1     # data survives scope exit


def test_reset_clears_data_not_enablement(reg):
    reg.inc("x")
    reg.observe("h", 1)
    with reg.span("s"):
        pass
    reg.reset()
    assert reg.enabled
    assert reg.counters() == {}
    assert reg.span_stats() == {}


def test_snapshot_schema_and_save_roundtrip(reg, tmp_path):
    reg.add("vm.steps", 12)
    reg.observe("slicing.slice_nodes", 7)
    with reg.span("pinplay.record"):
        pass
    path = str(tmp_path / "obs.json")
    assert reg.save(path) == path
    with open(path) as handle:
        data = json.load(handle)
    assert data["schema_version"] == 1
    assert data["enabled"] is True
    assert data["counters"]["vm.steps"] == 12
    assert data["histograms"]["slicing.slice_nodes"]["count"] == 1
    assert data["spans"]["pinplay.record"]["count"] == 1
