"""Differential tests: observability observes, it never perturbs.

For a batch of seeds from the shared randomized generator
(:mod:`tests.support.progen`), the full record → replay → slice pipeline
is executed twice — once with the registry disabled, once enabled — and
everything guest-visible must be *byte-identical*:

* the full :class:`InstrEvent` stream (def/use values, global order),
* the final :class:`MachineSnapshot` dict, output and exit code,
* the serialized pinball bytes (``to_bytes`` of the recorded region),
* the computed slices (node sets and edge multisets),
* the relogged slice pinball's exclusion list and serialized form.

Any divergence means a metric leaked into guest state or changed an
execution path, which would silently invalidate every number the obs
layer reports.
"""

import pytest

from repro.obs import OBS
from repro.pinplay import relog
from repro.slicing import SlicingSession

from tests.support.progen import (RetainingLog, build_program,
                                  record_pinball, run_machine)

#: ISSUE 3 acceptance floor: the obs differential passes on >= 12 seeds.
SEEDS = list(range(12))


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each case starts from a disabled, empty process-wide registry and
    leaves it the way it found it."""
    saved = OBS.enabled
    OBS.disable()
    OBS.reset()
    yield
    OBS.reset()
    OBS.enabled = saved


def _pipeline(seed):
    """One full DrDebug cycle; returns every guest-visible artifact."""
    program = build_program(seed)

    log = RetainingLog()
    machine = run_machine(program, seed, "predecoded", log)

    pinball = record_pinball(program, seed)
    session = SlicingSession(pinball, program)
    criterion = session.last_reads(1)[0]
    dslice = session.slice_for(criterion)
    slice_pb = relog(pinball, program, dslice.to_keep())

    return {
        "steps": list(log.steps),
        "syscalls": list(log.syscalls),
        "events": log.frozen(),
        "snapshot": machine.snapshot().to_dict(),
        "output": list(machine.output),
        "exit_code": machine.exit_code,
        "pinball_bytes": pinball.to_bytes(),
        "slice_nodes": sorted(dslice.nodes),
        "slice_edges": sorted(dslice.edges),
        "slice_pb_exclusions": slice_pb.exclusions,
        "slice_pb_bytes": slice_pb.to_bytes(),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_enabled_and_disabled_runs_are_byte_identical(seed):
    with OBS.scope(enabled=False):
        baseline = _pipeline(seed)
    with OBS.scope(enabled=True):
        observed = _pipeline(seed)

    # Guard against a vacuous pass: the enabled run really did record.
    counters = OBS.counters()
    assert counters.get("vm.steps", 0) > 0
    assert counters.get("pinplay.regions_recorded", 0) >= 1
    assert counters.get("slicing.queries", 0) >= 1

    for key in baseline:
        assert baseline[key] == observed[key], (
            "obs enabled perturbed %r (seed=%d)" % (key, seed))


@pytest.mark.parametrize("seed", SEEDS[::5])
def test_toggling_mid_process_leaves_execution_unchanged(seed):
    """Interleaving enabled/disabled pipelines (the cyclic-debugging usage
    pattern: metrics on for one replay, off for the next) never lets
    state recorded by one run contaminate the next."""
    first = _pipeline(seed)
    with OBS.scope(enabled=True):
        _pipeline(seed)
    again = _pipeline(seed)
    assert first == again
