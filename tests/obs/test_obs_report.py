"""The end-to-end obs report: one demo cycle lights up all five layers.

This encodes the PR's acceptance criterion directly: a single
``repro obs report`` run (which calls :func:`run_demo_cycle`) must show
nonzero counters from all five instrumented layers.
"""

import pytest

from repro.obs import LAYERS, OBS, format_report, layer_totals
from repro.obs.report import run_demo_cycle


@pytest.fixture
def demo_snapshot():
    """One demo cycle against a clean process-wide registry; state is
    restored afterwards (the demo only toggles enablement itself)."""
    saved = OBS.enabled
    OBS.disable()
    OBS.reset()
    try:
        yield run_demo_cycle()
    finally:
        OBS.reset()
        OBS.enabled = saved


def test_demo_cycle_reports_all_layers(demo_snapshot):
    totals = layer_totals(demo_snapshot)
    for layer in LAYERS:
        assert totals.get(layer, 0) > 0, (
            "layer %r reported no counters: %r" % (layer, totals))
    assert demo_snapshot["counters"]
    assert demo_snapshot["spans"]


def test_demo_cycle_restores_enablement(demo_snapshot):
    # run_demo_cycle enabled OBS only for its own duration.
    assert not OBS.enabled


def test_format_report_renders_every_layer_section(demo_snapshot):
    text = format_report(demo_snapshot)
    for layer in LAYERS:
        assert "[%s]" % layer in text
    assert "[spans]" in text
    # A few canonical counters appear in the rendering.
    assert "vm.instructions_retired" in text
    assert "slicing.queries" in text
    assert "debugger.reverse_commands" in text


def test_format_report_empty_snapshot_hints_at_enabling():
    text = format_report({"counters": {}, "histograms": {}, "spans": {}})
    assert "REPRO_OBS=1" in text
